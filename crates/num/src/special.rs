//! Special functions required by NuFFT interpolation kernels.
//!
//! The Kaiser-Bessel window — the kernel the paper evaluates with — needs
//! the zeroth-order modified Bessel function of the first kind, `I0`, both
//! to evaluate the window itself and (via its analytic Fourier transform)
//! to build the apodization correction. We implement `I0` with the
//! classic Abramowitz & Stegun §9.8 polynomial approximations, which are
//! accurate to ~1e-7 relative error — far below the NuFFT approximation
//! error for any practical kernel width.

/// Zeroth-order modified Bessel function of the first kind, `I0(x)`.
///
/// Uses the Abramowitz & Stegun 9.8.1 polynomial for `|x| < 3.75` and the
/// 9.8.2 asymptotic polynomial (scaled by `e^x/√x`) otherwise.
pub fn bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let t = x / 3.75;
        let y = t * t;
        1.0 + y
            * (3.5156229
                + y * (3.0899424
                    + y * (1.2067492 + y * (0.2659732 + y * (0.0360768 + y * 0.0045813)))))
    } else {
        let y = 3.75 / ax;
        let poly = 0.39894228
            + y * (0.01328592
                + y * (0.00225319
                    + y * (-0.00157565
                        + y * (0.00916281
                            + y * (-0.02057706
                                + y * (0.02635537 + y * (-0.01647633 + y * 0.00392377)))))));
        (ax.exp() / ax.sqrt()) * poly
    }
}

/// First-order Bessel function of the first kind, `J1(x)`.
///
/// Abramowitz & Stegun 9.4.4/9.4.6 rational approximations (~1e-7 absolute
/// error). Needed for the analytic Fourier transform of an ellipse, which
/// generates exact synthetic k-space data for the Shepp-Logan phantom.
pub fn bessel_j1(x: f64) -> f64 {
    let ax = x.abs();
    let result = if ax < 8.0 {
        let y = x * x;
        let num = x
            * (72362614232.0
                + y * (-7895059235.0
                    + y * (242396853.1
                        + y * (-2972611.439 + y * (15704.48260 + y * -30.16036606)))));
        let den = 144725228442.0
            + y * (2300535178.0 + y * (18583304.74 + y * (99447.43394 + y * (376.9991397 + y))));
        return num / den;
    } else {
        let z = 8.0 / ax;
        let y = z * z;
        let xx = ax - 2.356194491; // 3π/4
        let p0 = 1.0
            + y * (0.183105e-2
                + y * (-0.3516396496e-4 + y * (0.2457520174e-5 + y * -0.240337019e-6)));
        let p1 = 0.04687499995
            + y * (-0.2002690873e-3
                + y * (0.8449199096e-5 + y * (-0.88228987e-6 + y * 0.105787412e-6)));
        (core::f64::consts::FRAC_2_PI / ax).sqrt() * (xx.cos() * p0 - z * xx.sin() * p1)
    };
    if x < 0.0 {
        -result
    } else {
        result
    }
}

/// `jinc(x) = 2·J1(x)/x` with `jinc(0) = 1` — the radial profile of a
/// uniform disk's Fourier transform.
pub fn jinc(x: f64) -> f64 {
    if x.abs() < 1e-8 {
        1.0 - x * x / 8.0
    } else {
        2.0 * bessel_j1(x) / x
    }
}

/// Normalized cardinal sine, `sinc(x) = sin(πx)/(πx)` with `sinc(0) = 1`.
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-9 {
        1.0
    } else {
        let px = core::f64::consts::PI * x;
        px.sin() / px
    }
}

/// `sinh(x)/x` with the removable singularity filled in; used by the
/// analytic Fourier transform of the Kaiser-Bessel window when its
/// argument is real.
pub fn sinhc(x: f64) -> f64 {
    if x.abs() < 1e-8 {
        1.0 + x * x / 6.0
    } else {
        x.sinh() / x
    }
}

/// `sin(x)/x` (unnormalized sinc) with the removable singularity filled
/// in; the Kaiser-Bessel Fourier transform becomes this when its argument
/// turns imaginary (outside the main lobe).
pub fn sinxc(x: f64) -> f64 {
    if x.abs() < 1e-8 {
        1.0 - x * x / 6.0
    } else {
        x.sin() / x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference I0 via its rapidly converging power series
    /// `I0(x) = Σ (x²/4)^k / (k!)²`.
    fn i0_series(x: f64) -> f64 {
        let q = x * x / 4.0;
        let mut term = 1.0;
        let mut sum = 1.0;
        for k in 1..200 {
            term *= q / ((k * k) as f64);
            sum += term;
            if term < sum * 1e-17 {
                break;
            }
        }
        sum
    }

    #[test]
    fn i0_matches_series_small() {
        for i in 0..100 {
            let x = i as f64 * 0.0375; // covers [0, 3.75)
            let a = bessel_i0(x);
            let b = i0_series(x);
            assert!((a - b).abs() / b < 2e-7, "x={x}: poly {a} vs series {b}");
        }
    }

    #[test]
    fn i0_matches_series_large() {
        for i in 1..20 {
            let x = 3.75 + i as f64;
            let a = bessel_i0(x);
            let b = i0_series(x);
            assert!((a - b).abs() / b < 2e-7, "x={x}: poly {a} vs series {b}");
        }
    }

    #[test]
    fn i0_is_even() {
        for x in [0.5, 2.0, 7.0] {
            assert_eq!(bessel_i0(x), bessel_i0(-x));
        }
    }

    #[test]
    fn i0_known_values() {
        // I0(0) = 1 exactly; I0(1) ≈ 1.2660658778; I0(5) ≈ 27.2398718236.
        assert_eq!(bessel_i0(0.0), 1.0);
        assert!((bessel_i0(1.0) - 1.2660658778).abs() < 1e-6);
        assert!((bessel_i0(5.0) - 27.2398718236).abs() / 27.24 < 1e-6);
    }

    /// Reference J1 via the power series `J1(x) = Σ (−1)^k (x/2)^{2k+1} / (k!(k+1)!)`.
    fn j1_series(x: f64) -> f64 {
        let h = x / 2.0;
        let mut term = h;
        let mut sum = h;
        for k in 1..200 {
            term *= -(h * h) / (k as f64 * (k + 1) as f64);
            sum += term;
            if term.abs() < 1e-18 {
                break;
            }
        }
        sum
    }

    #[test]
    fn j1_matches_series_small() {
        for i in 0..80 {
            let x = i as f64 * 0.1;
            let a = bessel_j1(x);
            let b = j1_series(x);
            assert!((a - b).abs() < 1e-7, "x={x}: {a} vs {b}");
        }
    }

    #[test]
    fn j1_large_argument_known_values() {
        // J1(10) ≈ 0.04347274616886144, J1(20) ≈ 0.06683312417584991.
        assert!((bessel_j1(10.0) - 0.04347274616886144).abs() < 1e-7);
        assert!((bessel_j1(20.0) - 0.06683312417584991).abs() < 1e-7);
    }

    #[test]
    fn j1_is_odd() {
        for x in [0.5, 3.0, 12.0] {
            assert_eq!(bessel_j1(x), -bessel_j1(-x));
        }
    }

    #[test]
    fn jinc_limit_and_value() {
        assert!((jinc(0.0) - 1.0).abs() < 1e-12);
        assert!((jinc(1e-6) - 1.0).abs() < 1e-9);
        assert!((jinc(2.0) - bessel_j1(2.0)).abs() < 1e-12);
    }

    #[test]
    fn sinc_properties() {
        assert_eq!(sinc(0.0), 1.0);
        // Zeros at nonzero integers.
        for n in 1..6 {
            assert!(sinc(n as f64).abs() < 1e-15);
        }
        // Even symmetry.
        assert!((sinc(0.3) - sinc(-0.3)).abs() < 1e-15);
    }

    #[test]
    fn sinhc_and_sinxc_limits() {
        assert!((sinhc(0.0) - 1.0).abs() < 1e-12);
        assert!((sinxc(0.0) - 1.0).abs() < 1e-12);
        assert!((sinhc(1e-6) - 1.0).abs() < 1e-9);
        assert!((sinxc(1e-6) - 1.0).abs() < 1e-9);
        assert!((sinhc(2.0) - 2.0f64.sinh() / 2.0).abs() < 1e-14);
        assert!((sinxc(2.0) - 2.0f64.sin() / 2.0).abs() < 1e-14);
    }
}
