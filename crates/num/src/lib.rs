//! Numeric substrate for the Jigsaw NuFFT reproduction.
//!
//! This crate provides the small, dependency-free numeric toolbox that the
//! rest of the workspace builds on:
//!
//! * [`Complex`] — a `#[repr(C)]` complex number generic over [`Float`],
//!   with the full operator surface needed by FFTs and gridding kernels.
//! * [`Float`] — the scalar abstraction unifying `f32` and `f64` so that the
//!   FFT and NuFFT engines can be instantiated at either precision (the
//!   paper's GPU implementation is `f32`, its reference is `f64`).
//! * [`special`] — special functions (modified Bessel `I0`, `sinc`) needed
//!   by the Kaiser-Bessel interpolation kernel and its apodization inverse.
//!
//! Everything here is written from scratch; no external numeric crates are
//! used, mirroring the paper's self-contained fixed-function hardware.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod complex;
pub mod float;
pub mod special;

pub use complex::Complex;
pub use float::Float;

/// Complex number specialized to `f64` (reference precision, as used by the
/// paper's MIRT baseline).
pub type C64 = Complex<f64>;
/// Complex number specialized to `f32` (GPU precision in the paper).
pub type C32 = Complex<f32>;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::complex::Complex;
    pub use crate::float::Float;
    pub use crate::{C32, C64};
}
