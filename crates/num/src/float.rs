//! Scalar float abstraction.
//!
//! The NuFFT engines are generic over the working precision: the paper's
//! CPU baseline runs in `f64`, its GPU implementation in `f32`, and the
//! JIGSAW accelerator in 32-bit fixed point (see the `jigsaw-fixed` crate).
//! [`Float`] captures exactly the operations the floating-point paths need,
//! so `f32` and `f64` share one implementation of every algorithm.

use core::fmt::{Debug, Display};
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

/// A real scalar type usable as the working precision of an (Nu)FFT.
///
/// Implemented for `f32` and `f64`. The trait is deliberately small:
/// everything the workspace needs and nothing more.
pub trait Float:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Rem<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// One half.
    const HALF: Self;
    /// Two.
    const TWO: Self;
    /// Archimedes' constant.
    const PI: Self;
    /// Machine epsilon.
    const EPSILON: Self;

    /// Lossy conversion from `f64` (used for constants and LUT generation).
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion from `usize` (grid sizes, indices).
    fn from_usize(v: usize) -> Self;
    /// Widening conversion to `f64` for error analysis and accumulation.
    fn to_f64(self) -> f64;

    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Simultaneous sine and cosine.
    fn sin_cos(self) -> (Self, Self);
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Largest integer ≤ self.
    fn floor(self) -> Self;
    /// Smallest integer ≥ self.
    fn ceil(self) -> Self;
    /// Round half away from zero.
    fn round(self) -> Self;
    /// Raise to an integer power.
    fn powi(self, n: i32) -> Self;
    /// Fused multiply-add.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// True if the value is finite (not NaN or ±∞).
    fn is_finite(self) -> bool;
    /// True if the value is NaN.
    fn is_nan(self) -> bool;
    /// Maximum of two values (NaN-propagating like `f64::max` is fine).
    fn max(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// Euclidean remainder into `[0, rhs)`.
    fn rem_euclid(self, rhs: Self) -> Self;
}

macro_rules! impl_float {
    ($t:ty) => {
        impl Float for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const HALF: Self = 0.5;
            const TWO: Self = 2.0;
            const PI: Self = core::f64::consts::PI as $t;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn from_usize(v: usize) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline(always)]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline(always)]
            fn sin_cos(self) -> (Self, Self) {
                self.sin_cos()
            }
            #[inline(always)]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline(always)]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline(always)]
            fn floor(self) -> Self {
                self.floor()
            }
            #[inline(always)]
            fn ceil(self) -> Self {
                self.ceil()
            }
            #[inline(always)]
            fn round(self) -> Self {
                self.round()
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                self.powi(n)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self.mul_add(a, b)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                self.is_nan()
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline(always)]
            fn rem_euclid(self, rhs: Self) -> Self {
                self.rem_euclid(rhs)
            }
        }
    };
}

impl_float!(f32);
impl_float!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<T: Float>() {
        let x = T::from_f64(1.5);
        assert_eq!(x.to_f64(), 1.5);
        assert_eq!(T::from_usize(3).to_f64(), 3.0);
    }

    #[test]
    fn roundtrip_f32_f64() {
        generic_roundtrip::<f32>();
        generic_roundtrip::<f64>();
    }

    #[test]
    fn constants_match_std() {
        assert_eq!(<f64 as Float>::PI, core::f64::consts::PI);
        assert!((<f32 as Float>::PI - core::f32::consts::PI).abs() < 1e-7);
        assert_eq!(<f64 as Float>::HALF * 2.0, 1.0);
    }

    #[test]
    fn rem_euclid_wraps_negative() {
        let x: f64 = -0.25;
        assert_eq!(Float::rem_euclid(x, 8.0), 7.75);
        let y: f32 = -3.5;
        assert_eq!(Float::rem_euclid(y, 2.0), 0.5);
    }

    #[test]
    fn sin_cos_consistent() {
        let x = 0.7f64;
        let (s, c) = Float::sin_cos(x);
        assert!((s - x.sin()).abs() < 1e-15);
        assert!((c - x.cos()).abs() < 1e-15);
    }

    #[test]
    fn finite_and_nan_predicates() {
        assert!(Float::is_finite(1.0f64));
        assert!(!Float::is_finite(f64::INFINITY));
        assert!(Float::is_nan(f64::NAN));
        assert!(!Float::is_nan(0.0f32));
    }
}
