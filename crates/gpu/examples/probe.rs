//! Quick probe of the GPU replay model at two grid sizes.
fn main() {
    use jigsaw_core::config::GridParams;
    use jigsaw_core::kernel::KernelKind;
    use jigsaw_core::traj;
    use jigsaw_gpu::*;
    for g in [512usize, 1024] {
        let p = GridParams {
            grid: g,
            width: 6,
            table_oversampling: 32,
            tile: 8,
            kernel: KernelKind::Auto.resolve(6, 2.0),
        };
        let mut cyc = traj::radial_2d(300, 128, true);
        cyc.truncate(30000);
        traj::shuffle(&mut cyc, 9);
        let coords: Vec<[f64; 2]> = cyc
            .iter()
            .map(|c| {
                [
                    c[0].rem_euclid(1.0) * g as f64,
                    c[1].rem_euclid(1.0) * g as f64,
                ]
            })
            .collect();
        let cfg = ReplayConfig::default();
        let sd = replay_slice_dice(&p, &coords, &cfg);
        let imp = replay_impatient(&p, &coords, &cfg);
        for k in [&sd, &imp] {
            println!(
                "G={g} {:45} L2 read hit {:5.1}%  write hit {:5.1}%  lanes {:4.1}%  occ {:4.1}%  flops {}",
                k.name,
                100.0 * k.l2_hit_rate,
                100.0 * k.write_hit_rate,
                100.0 * k.lane_efficiency,
                100.0 * k.occupancy,
                k.weight_flops
            );
        }
    }
}
