//! Set-associative cache model with LRU replacement.
//!
//! Models a GPU L2: physically-addressed, shared by all thread blocks,
//! accessed at cache-line granularity. Only hits/misses are tracked — the
//! model is structural, not a timing simulator.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// The Titan Xp's 3 MiB L2 with 128-byte lines, 16-way.
    pub fn titan_xp_l2() -> Self {
        Self {
            capacity_bytes: 3 * 1024 * 1024,
            line_bytes: 128,
            ways: 16,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// LRU set-associative cache simulator with separate read/write
/// accounting (profiler-style hit rates are read hit rates; writes and
/// atomics are tracked as traffic).
pub struct CacheSim {
    cfg: CacheConfig,
    sets: usize,
    /// `tags[set]` = lines in LRU order (front = most recent).
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
    write_hits: u64,
    write_misses: u64,
}

impl CacheSim {
    /// Create an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two() && cfg.line_bytes > 0);
        assert!(cfg.ways > 0);
        let sets = cfg.sets();
        Self {
            cfg,
            sets,
            tags: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
            write_hits: 0,
            write_misses: 0,
        }
    }

    fn touch(&mut self, addr: u64) -> bool {
        let line = addr / self.cfg.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // Move to MRU.
            let t = ways.remove(pos);
            ways.insert(0, t);
            true
        } else {
            ways.insert(0, line);
            if ways.len() > self.cfg.ways {
                ways.pop();
            }
            false
        }
    }

    /// Read a byte address. Returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let hit = self.touch(addr);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Write (or atomic-update) a byte address; counted separately from
    /// reads. Returns true on hit.
    pub fn access_write(&mut self, addr: u64) -> bool {
        let hit = self.touch(addr);
        if hit {
            self.write_hits += 1;
        } else {
            self.write_misses += 1;
        }
        hit
    }

    /// Read a whole warp's worth of addresses, coalesced: distinct cache
    /// lines are accessed once each (the GPU coalescer merges per-lane
    /// requests that fall in the same line). Returns the number of line
    /// transactions issued.
    pub fn access_coalesced(&mut self, addrs: &[u64]) -> usize {
        let lines = Self::dedup_lines(addrs, self.cfg.line_bytes);
        for &l in &lines {
            self.access(l * self.cfg.line_bytes as u64);
        }
        lines.len()
    }

    /// Coalesced write/atomic transactions.
    pub fn access_coalesced_write(&mut self, addrs: &[u64]) -> usize {
        let lines = Self::dedup_lines(addrs, self.cfg.line_bytes);
        for &l in &lines {
            self.access_write(l * self.cfg.line_bytes as u64);
        }
        lines.len()
    }

    fn dedup_lines(addrs: &[u64], line_bytes: usize) -> Vec<u64> {
        let mut lines: Vec<u64> = addrs.iter().map(|a| a / line_bytes as u64).collect();
        lines.sort_unstable();
        lines.dedup();
        lines
    }

    /// Read hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Read misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Write/atomic transactions so far (hits, misses).
    pub fn write_counts(&self) -> (u64, u64) {
        (self.write_hits, self.write_misses)
    }

    /// Read hit rate in [0, 1] — the profiler-style "L2 hit rate".
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Write/atomic hit rate in [0, 1].
    pub fn write_hit_rate(&self) -> f64 {
        let total = self.write_hits + self.write_misses;
        if total == 0 {
            0.0
        } else {
            self.write_hits as f64 / total as f64
        }
    }

    /// Reset counters but keep contents (for warm-up phases).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.write_hits = 0;
        self.write_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        CacheSim::new(CacheConfig {
            capacity_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 holds lines whose index ≡ 0 mod 4: lines 0, 4, 8 (addrs 0, 256, 512).
        c.access(0);
        c.access(256);
        c.access(512); // evicts line 0 (LRU)
        assert!(!c.access(0), "line 0 must have been evicted");
        assert!(c.access(512));
    }

    #[test]
    fn lru_refresh_on_hit() {
        let mut c = tiny();
        c.access(0);
        c.access(256);
        c.access(0); // refresh line 0 → line 4 (addr 256) becomes LRU
        c.access(512); // evicts line at addr 256
        assert!(c.access(0));
        assert!(!c.access(256));
    }

    #[test]
    fn coalescing_merges_same_line() {
        let mut c = tiny();
        // 32 lanes all in one 64-byte line → 1 transaction.
        let addrs: Vec<u64> = (0..32).map(|i| i * 2).collect();
        assert_eq!(c.access_coalesced(&addrs), 1);
        // 32 lanes strided by 64 bytes → 32 transactions.
        let addrs: Vec<u64> = (0..32).map(|i| i * 64).collect();
        assert_eq!(c.access_coalesced(&addrs), 32);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        c.reset_counters();
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = CacheSim::new(CacheConfig {
            capacity_bytes: 64 * 1024,
            line_bytes: 64,
            ways: 8,
        });
        let addrs: Vec<u64> = (0..512).map(|i| i * 64).collect(); // 32 KiB
        for &a in &addrs {
            c.access(a);
        }
        c.reset_counters();
        for _ in 0..3 {
            for &a in &addrs {
                c.access(a);
            }
        }
        assert_eq!(c.misses(), 0, "resident working set must not miss");
        assert!((c.hit_rate() - 1.0).abs() < 1e-12);
    }
}
