//! Replay the gridding kernels' access patterns through the cache/SIMT
//! model.
//!
//! Both replays are driven by *real* sample data through the *real*
//! coordinate decomposition (`jigsaw_core::decomp`), so window positions,
//! tile straddles, wraps, and bin duplication are exact. The GPU-specific
//! modeling assumptions are:
//!
//! * resident thread blocks are interleaved round-robin at sample
//!   granularity (this is what lets concurrently-resident tile–bin pairs
//!   "evict one another's data from the cache", §II-C);
//! * accesses are counted at coalesced line-transaction granularity with
//!   reads and writes/atomics tracked separately — the reported "L2 hit
//!   rate" is the read hit rate, matching the profiler metric the paper
//!   quotes;
//! * lane efficiency counts active lanes over issued lanes per
//!   sample-step — the paper's "T/W threads will be unaffected — and thus
//!   idle" divergence argument, measured instead of asserted.

use crate::cache::{CacheConfig, CacheSim};
use crate::occupancy::{occupancy, KernelResources, SmConfig};
use jigsaw_core::config::GridParams;
use jigsaw_core::decomp::Decomposer;

/// Byte address map of the replayed kernels (disjoint regions).
const GRID_BASE: u64 = 0x4000_0000;
const SAMPLE_BASE: u64 = 0x8000_0000;
const LUT_BASE: u64 = 0xC000_0000;
const BIN_BASE: u64 = 0x1_0000_0000;
/// Complex f32 grid point.
const GRID_STRIDE: u64 = 8;
/// Coordinates (2 × f32) + complex f32 value.
const SAMPLE_STRIDE: u64 = 16;
/// Complex f32 LUT entry.
const LUT_STRIDE: u64 = 8;

/// Replay configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// L2 geometry.
    pub cache: CacheConfig,
    /// Concurrently resident thread blocks sharing the L2 (whole GPU).
    pub concurrent_blocks: usize,
    /// Impatient's binning tile side `B`.
    pub bin_tile: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            cache: CacheConfig::titan_xp_l2(),
            concurrent_blocks: 120, // 30 SMs × ~4 resident blocks
            bin_tile: 16,
        }
    }
}

/// Outcome of one kernel replay.
#[derive(Debug, Clone, Copy)]
pub struct GpuKernelStats {
    /// Kernel name.
    pub name: &'static str,
    /// Modeled L2 *read* hit rate in `[0, 1]` (the profiler-style metric
    /// the paper quotes).
    pub l2_hit_rate: f64,
    /// Hit rate of write/atomic traffic (tracked separately).
    pub write_hit_rate: f64,
    /// Active lanes / issued lanes in `[0, 1]` (SIMD efficiency).
    pub lane_efficiency: f64,
    /// Total L2 accesses replayed.
    pub l2_accesses: u64,
    /// On-the-fly weight-evaluation FLOPs (zero for LUT kernels).
    pub weight_flops: u64,
    /// SM occupancy from the kernel's resource footprint.
    pub occupancy: f64,
    /// Memory-level parallelism: mean distinct global-memory lines a
    /// block touches per sample-step — independent requests the memory
    /// system can overlap. §II-C: "binning['s] restriction of memory
    /// accesses to a single tile severely limits the available MLP".
    pub mlp: f64,
}

/// Replay the Impatient-style kernel: output-driven tile–bin pairs,
/// `B²`-thread blocks, tile staged in shared memory, Kaiser-Bessel
/// weights computed in-thread (~40 FLOPs per affected point).
pub fn replay_impatient(p: &GridParams, coords: &[[f64; 2]], cfg: &ReplayConfig) -> GpuKernelStats {
    let dec = Decomposer::new(p);
    let b = cfg.bin_tile as u32;
    let g = p.grid as u32;
    let w = p.width as u32;
    let tiles_per_dim = (p.grid / cfg.bin_tile) as u32;

    // Presort (host side; not part of the replayed traffic — the paper
    // charges it as a separate pass, which fig6 measures in software).
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); (tiles_per_dim * tiles_per_dim) as usize];
    let mut decs = Vec::with_capacity(coords.len());
    for (i, c) in coords.iter().enumerate() {
        let dy = dec.decompose(dec.quantize(c[0]));
        let dx = dec.decompose(dec.quantize(c[1]));
        decs.push((dy, dx));
        let mut dim_tiles = [[0u32; 2]; 2];
        let mut counts = [0usize; 2];
        for (d, dd) in [dy, dx].iter().enumerate() {
            let hi = dd.base / b;
            let lo = ((dd.base + g - (w - 1)) % g) / b;
            dim_tiles[d][0] = hi;
            counts[d] = 1;
            if lo != hi {
                dim_tiles[d][1] = lo;
                counts[d] = 2;
            }
        }
        for ty in 0..counts[0] {
            for tx in 0..counts[1] {
                let lin = dim_tiles[0][ty] * tiles_per_dim + dim_tiles[1][tx];
                bins[lin as usize].push(i as u32);
            }
        }
    }

    // Round-robin the resident tile–bin blocks.
    let mut cache = CacheSim::new(cfg.cache);
    let mut active_lanes: u64 = 0;
    let mut issued_lanes: u64 = 0;
    let mut weight_flops: u64 = 0;
    let block_lanes = (cfg.bin_tile * cfg.bin_tile) as u64;
    let mut mlp_lines: u64 = 0;
    let mut mlp_steps: u64 = 0;

    let work: Vec<(u32, &Vec<u32>)> = bins
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(lin, v)| (lin as u32, v))
        .collect();
    let mut resident: Vec<(usize, usize)> = Vec::new(); // (work idx, sample ptr)
    let mut next_block = 0usize;
    while next_block < work.len() && resident.len() < cfg.concurrent_blocks {
        resident.push((next_block, 0));
        next_block += 1;
    }
    while !resident.is_empty() {
        let mut slot = 0;
        while slot < resident.len() {
            let (wi, ptr) = resident[slot];
            let (lin, bin) = work[wi];
            if ptr >= bin.len() {
                // Tile write-back: read-modify-write every tile point,
                // coalesced per row (B points × 8 B = one 128 B line).
                let ty = lin / tiles_per_dim;
                let tx = lin % tiles_per_dim;
                for row in 0..b as u64 {
                    let addrs: Vec<u64> = (0..b as u64)
                        .map(|col| {
                            let gy = ty as u64 * b as u64 + row;
                            let gx = tx as u64 * b as u64 + col;
                            GRID_BASE + (gy * g as u64 + gx) * GRID_STRIDE
                        })
                        .collect();
                    cache.access_coalesced(&addrs); // RMW read
                    cache.access_coalesced_write(&addrs); // RMW write
                }
                // Write-back issues B independent row lines at once.
                mlp_lines += b as u64;
                mlp_steps += 1;
                // Retire and replace with the next queued block.
                if next_block < work.len() {
                    resident[slot] = (next_block, 0);
                    next_block += 1;
                    continue;
                } else {
                    resident.remove(slot);
                    continue;
                }
            }
            let sample = bin[ptr];
            resident[slot].1 += 1;
            // Bin-list index load + sample data load — the only global
            // traffic of a sample-step (accumulation stays in the tile's
            // shared memory): two independent lines in flight.
            cache.access(BIN_BASE + (lin as u64 * 262_144 + ptr as u64) * 4);
            cache.access(SAMPLE_BASE + sample as u64 * SAMPLE_STRIDE);
            mlp_lines += 2;
            mlp_steps += 1;
            // Boundary check on every tile point (the divergence source).
            issued_lanes += block_lanes;
            let (dy, dx) = decs[sample as usize];
            let ty = lin / tiles_per_dim;
            let tx = lin % tiles_per_dim;
            let mut active = 0u64;
            for j in 0..w {
                let ky = (dy.base + g - j) % g;
                if ky / b != ty {
                    continue;
                }
                for i in 0..w {
                    let kx = (dx.base + g - i) % g;
                    if kx / b == tx {
                        active += 1;
                    }
                }
            }
            active_lanes += active;
            // In-thread Kaiser-Bessel evaluation: ~40 FLOPs per active
            // point (sqrt + I0 polynomial per dimension).
            weight_flops += active * 40;
            slot += 1;
        }
    }

    GpuKernelStats {
        name: "Impatient-style (binned, on-the-fly weights)",
        l2_hit_rate: cache.hit_rate(),
        write_hit_rate: cache.write_hit_rate(),
        lane_efficiency: active_lanes as f64 / issued_lanes.max(1) as f64,
        l2_accesses: cache.hits()
            + cache.misses()
            + cache.write_counts().0
            + cache.write_counts().1,
        weight_flops,
        occupancy: occupancy(&SmConfig::pascal(), &KernelResources::impatient()),
        mlp: mlp_lines as f64 / mlp_steps.max(1) as f64,
    }
}

/// Replay the Slice-and-Dice GPU kernel: 64-thread blocks over the dice
/// columns, sample stream split across blocks, LUT weights, atomic RMW
/// to the shared row-major grid.
pub fn replay_slice_dice(
    p: &GridParams,
    coords: &[[f64; 2]],
    cfg: &ReplayConfig,
) -> GpuKernelStats {
    let dec = Decomposer::new(p);
    let g = p.grid as u32;
    let w = p.width as u32;
    let t = p.tile as u32;
    let l = p.table_oversampling as u64;
    let wl2 = (p.width * p.table_oversampling / 2) as u64;

    let m = coords.len();
    let nblocks = cfg.concurrent_blocks;
    let chunk = m.div_ceil(nblocks.max(1)).max(1);

    let mut cache = CacheSim::new(cfg.cache);
    let mut active_lanes: u64 = 0;
    let mut issued_lanes: u64 = 0;
    let block_lanes = (t * t) as u64;
    let mut mlp_lines: u64 = 0;
    let mut mlp_steps: u64 = 0;

    // Resident blocks process their chunks round-robin, one sample per
    // turn — interleaved exactly like the binned replay so the cache
    // pressure comparison is fair.
    let mut ptrs: Vec<usize> = (0..nblocks).map(|b| b * chunk).collect();
    let ends: Vec<usize> = (0..nblocks).map(|b| ((b + 1) * chunk).min(m)).collect();
    let mut remaining = nblocks;
    while remaining > 0 {
        remaining = 0;
        for blk in 0..nblocks {
            if ptrs[blk] >= ends[blk] {
                continue;
            }
            remaining += 1;
            let i = ptrs[blk];
            ptrs[blk] += 1;
            // Sample load (blocks stream disjoint, contiguous chunks).
            cache.access(SAMPLE_BASE + i as u64 * SAMPLE_STRIDE);
            let dy = dec.decompose(dec.quantize(coords[i][0]));
            let dx = dec.decompose(dec.quantize(coords[i][1]));
            issued_lanes += block_lanes;
            // Every affected lane issues two LUT reads and one grid
            // atomic; the warp coalescer merges same-line requests.
            let mut active = 0u64;
            let mut lut_addrs = Vec::with_capacity(2 * (w * w) as usize);
            let mut grid_addrs = Vec::with_capacity((w * w) as usize);
            for py in 0..t {
                let dist_y = dec.forward_distance(dy.rel, py);
                if dist_y >= w {
                    continue;
                }
                let ty = dec.tile_for_pipeline(&dy, py);
                let t_y = dec.fold(dec.lut_index(dist_y, dy.phi2)) as u64;
                for px in 0..t {
                    let dist_x = dec.forward_distance(dx.rel, px);
                    if dist_x >= w {
                        continue;
                    }
                    active += 1;
                    let tx = dec.tile_for_pipeline(&dx, px);
                    let t_x = dec.fold(dec.lut_index(dist_x, dx.phi2)) as u64;
                    lut_addrs.push(LUT_BASE + t_y.min(wl2) * LUT_STRIDE);
                    lut_addrs.push(LUT_BASE + t_x.min(wl2) * LUT_STRIDE);
                    let gy = (ty * t + py) as u64;
                    let gx = (tx * t + px) as u64;
                    grid_addrs.push(GRID_BASE + (gy * g as u64 + gx) * GRID_STRIDE);
                }
            }
            let lut_lines = cache.access_coalesced(&lut_addrs);
            let grid_lines = cache.access_coalesced_write(&grid_addrs);
            // All of this step's lines are independent (one sample's
            // scatter targets distinct dice columns): issuable in parallel.
            mlp_lines += 1 + lut_lines as u64 + grid_lines as u64;
            mlp_steps += 1;
            active_lanes += active;
            let _ = l;
        }
    }

    GpuKernelStats {
        name: "Slice-and-Dice (LUT weights, atomics)",
        l2_hit_rate: cache.hit_rate(),
        write_hit_rate: cache.write_hit_rate(),
        lane_efficiency: active_lanes as f64 / issued_lanes.max(1) as f64,
        l2_accesses: cache.hits()
            + cache.misses()
            + cache.write_counts().0
            + cache.write_counts().1,
        weight_flops: 0,
        occupancy: occupancy(&SmConfig::pascal(), &KernelResources::slice_dice()),
        mlp: mlp_lines as f64 / mlp_steps.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_core::kernel::KernelKind;
    use jigsaw_core::traj;

    fn setup(g: usize, m: usize) -> (GridParams, Vec<[f64; 2]>) {
        let p = GridParams {
            grid: g,
            width: 6,
            table_oversampling: 32,
            tile: 8,
            kernel: KernelKind::Auto.resolve(6, 2.0),
        };
        let mut cyc = traj::radial_2d(m.div_ceil(128).max(1), 128, true);
        cyc.truncate(m);
        traj::shuffle(&mut cyc, 9);
        let coords = cyc
            .iter()
            .map(|c| {
                [
                    c[0].rem_euclid(1.0) * g as f64,
                    c[1].rem_euclid(1.0) * g as f64,
                ]
            })
            .collect();
        (p, coords)
    }

    #[test]
    fn slice_dice_beats_impatient_on_every_axis() {
        // §VI-A's four reasons, measured from the replay, at the paper's
        // grid size (1024² > the 3 MiB L2).
        let (p, coords) = setup(1024, 20_000);
        let cfg = ReplayConfig::default();
        let sd = replay_slice_dice(&p, &coords, &cfg);
        let imp = replay_impatient(&p, &coords, &cfg);
        // (1) LUT vs on-the-fly weights.
        assert_eq!(sd.weight_flops, 0);
        assert!(imp.weight_flops > 0);
        // (2) L2 hit rate.
        assert!(
            sd.l2_hit_rate > imp.l2_hit_rate + 0.15,
            "S&D {:.3} vs Impatient {:.3}",
            sd.l2_hit_rate,
            imp.l2_hit_rate
        );
        assert!(sd.l2_hit_rate > 0.9, "S&D hit rate {:.3}", sd.l2_hit_rate);
        // (3) Occupancy.
        assert!(sd.occupancy > 1.5 * imp.occupancy);
        // (4) SIMD lane efficiency / divergence.
        assert!(
            sd.lane_efficiency > 3.0 * imp.lane_efficiency,
            "S&D {:.3} vs Impatient {:.3}",
            sd.lane_efficiency,
            imp.lane_efficiency
        );
    }

    #[test]
    fn slice_dice_exposes_more_mlp() {
        // §II-C / §III: the stacked-tile layout "increases MLP".
        let (p, coords) = setup(512, 8_000);
        let cfg = ReplayConfig::default();
        let sd = replay_slice_dice(&p, &coords, &cfg);
        let imp = replay_impatient(&p, &coords, &cfg);
        assert!(
            sd.mlp > 2.0 * imp.mlp,
            "S&D MLP {:.1} vs Impatient {:.1}",
            sd.mlp,
            imp.mlp
        );
        // A sample's scatter spans ~W rows (+ sample + LUT lines).
        assert!(sd.mlp >= 6.0, "S&D MLP {:.1}", sd.mlp);
    }

    #[test]
    fn lane_efficiency_matches_analytic_model() {
        // S&D: W²/T² of lanes active; Impatient: W²/B² *averaged over the
        // duplicated bin memberships* (straddling samples are mostly
        // inactive in their secondary tiles).
        let (p, coords) = setup(256, 8_000);
        let cfg = ReplayConfig::default();
        let sd = replay_slice_dice(&p, &coords, &cfg);
        assert!((sd.lane_efficiency - 36.0 / 64.0).abs() < 1e-9);
        let imp = replay_impatient(&p, &coords, &cfg);
        // Upper bound W²/B²; lower because duplicated instances split the
        // same W² active points between bins.
        assert!(imp.lane_efficiency <= 36.0 / 256.0 + 1e-9);
        assert!(imp.lane_efficiency > 0.5 * 36.0 / 256.0);
    }

    #[test]
    fn impatient_duplication_shows_in_issued_work() {
        // The same workload issues more sample-steps under binning (one
        // per bin membership), visible as extra L2 traffic per sample.
        let (p, coords) = setup(256, 4_000);
        let cfg = ReplayConfig::default();
        let sd = replay_slice_dice(&p, &coords, &cfg);
        let imp = replay_impatient(&p, &coords, &cfg);
        // S&D transactions per sample are bounded and near-constant
        // (1 sample read + a few coalesced LUT lines + ≤ W·2 grid lines);
        // Impatient adds tile write-back traffic scaled by duplication.
        let sd_per = sd.l2_accesses as f64 / coords.len() as f64;
        assert!(
            (5.0..30.0).contains(&sd_per),
            "S&D transactions/sample {sd_per}"
        );
        let _ = imp;
    }

    #[test]
    fn more_concurrent_blocks_hurt_binned_hit_rate() {
        // "Different warps evict one another's data from the cache":
        // raising residency should not help Impatient, and with a small
        // cache it hurts.
        let (p, coords) = setup(512, 16_000);
        let small_cache = CacheConfig {
            capacity_bytes: 256 * 1024,
            line_bytes: 128,
            ways: 8,
        };
        let few = replay_impatient(
            &p,
            &coords,
            &ReplayConfig {
                cache: small_cache,
                concurrent_blocks: 4,
                bin_tile: 16,
            },
        );
        let many = replay_impatient(
            &p,
            &coords,
            &ReplayConfig {
                cache: small_cache,
                concurrent_blocks: 240,
                bin_tile: 16,
            },
        );
        assert!(
            many.l2_hit_rate <= few.l2_hit_rate + 0.01,
            "few {:.3} many {:.3}",
            few.l2_hit_rate,
            many.l2_hit_rate
        );
    }
}
