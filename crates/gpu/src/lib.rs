//! # jigsaw-gpu — a SIMT/cache execution model for the gridding kernels
//!
//! §VI-A of the paper explains *why* Slice-and-Dice beats the binned
//! Impatient kernel on the same GPU with four micro-architectural
//! observations:
//!
//! 1. Slice-and-Dice reads interpolation weights from a LUT while
//!    Impatient computes them on the fly;
//! 2. Slice-and-Dice achieves an **L2 hit rate of ~98 %** vs ~80 %;
//! 3. Slice-and-Dice achieves **~80 % occupancy** vs ~47 %;
//! 4. Slice-and-Dice exposes parallelism across both the input array and
//!    the output grid, while binned output-driven kernels leave `T/W` of
//!    each warp's lanes idle on every sample ("severe branch divergence").
//!
//! We have no GPU, so this crate *derives* those numbers instead of
//! measuring them: it replays the exact memory-access and branch streams
//! the two algorithms generate — from real sample data, with the real
//! decomposition — through a configurable set-associative cache model and
//! a SIMT lane-efficiency counter, with the concurrent thread blocks of
//! each kernel interleaved the way a GPU scheduler would interleave them
//! (which is precisely what the paper says hurts binning: "different
//! warps evict one another's data from the cache").
//!
//! The model is deliberately structural — no latencies or clocks, just
//! hit rates, lane efficiency, and traffic counts — so every reported
//! number follows from the algorithms themselves plus one cache
//! geometry, not from tuned constants.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod occupancy;
pub mod replay;

pub use cache::{CacheConfig, CacheSim};
pub use occupancy::{occupancy, KernelResources, SmConfig};
pub use replay::{replay_impatient, replay_slice_dice, GpuKernelStats, ReplayConfig};
