//! CUDA-style SM occupancy calculation.
//!
//! Occupancy = resident threads / maximum resident threads, where the
//! resident block count is limited by whichever SM resource runs out
//! first: registers, shared memory, the block slot count, or the thread
//! count. The paper reports ~80 % occupancy for Slice-and-Dice vs ~47 %
//! for Impatient (§VI-A reason 3); those numbers follow from each
//! kernel's resource footprint — Impatient's on-the-fly Kaiser-Bessel
//! weight evaluation needs far more registers per thread than
//! Slice-and-Dice's table lookup.

/// Streaming-multiprocessor resource limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmConfig {
    /// Register file size (32-bit registers).
    pub registers: u32,
    /// Shared memory per SM in bytes.
    pub shared_bytes: u32,
    /// Maximum resident threads.
    pub max_threads: u32,
    /// Maximum resident blocks.
    pub max_blocks: u32,
    /// Register allocation granularity (per warp).
    pub reg_alloc_granularity: u32,
}

impl SmConfig {
    /// Pascal (GP102 / Titan Xp) SM limits.
    pub fn pascal() -> Self {
        Self {
            registers: 65_536,
            shared_bytes: 96 * 1024,
            max_threads: 2048,
            max_blocks: 32,
            reg_alloc_granularity: 256,
        }
    }
}

/// Per-kernel resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// Threads per block.
    pub threads_per_block: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes.
    pub shared_per_block: u32,
}

impl KernelResources {
    /// Estimated footprint of the Impatient-style binned kernel:
    /// 256-thread blocks (one per 16×16 tile), heavy register use from
    /// the in-thread Kaiser-Bessel evaluation (polynomial I0, division,
    /// square roots), and the tile staged in shared memory.
    pub fn impatient() -> Self {
        Self {
            threads_per_block: 256,
            regs_per_thread: 64,
            shared_per_block: 16 * 16 * 8, // B² complex f32 tile
        }
    }

    /// Estimated footprint of the Slice-and-Dice kernel: 64-thread blocks
    /// (8×8 dice columns), lean register use (table lookup + MAC), no
    /// shared-memory staging (atomics to the global grid).
    pub fn slice_dice() -> Self {
        Self {
            threads_per_block: 64,
            regs_per_thread: 40,
            shared_per_block: 0,
        }
    }
}

/// Occupancy in `[0, 1]`: resident threads over the SM maximum.
pub fn occupancy(sm: &SmConfig, k: &KernelResources) -> f64 {
    let warps_per_block = k.threads_per_block.div_ceil(32);
    // Register limit (allocated per warp at the SM granularity).
    let regs_per_warp =
        (k.regs_per_thread * 32).div_ceil(sm.reg_alloc_granularity) * sm.reg_alloc_granularity;
    let blocks_by_regs = sm
        .registers
        .checked_div(regs_per_warp)
        .map_or(sm.max_blocks, |warps| warps / warps_per_block);
    // Shared-memory limit.
    let blocks_by_shared = sm
        .shared_bytes
        .checked_div(k.shared_per_block)
        .unwrap_or(sm.max_blocks);
    // Thread and slot limits.
    let blocks_by_threads = sm.max_threads / k.threads_per_block;
    let blocks = blocks_by_regs
        .min(blocks_by_shared)
        .min(blocks_by_threads)
        .min(sm.max_blocks);
    (blocks * k.threads_per_block) as f64 / sm.max_threads as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_kernel_reaches_full_occupancy() {
        let k = KernelResources {
            threads_per_block: 256,
            regs_per_thread: 32,
            shared_per_block: 0,
        };
        let occ = occupancy(&SmConfig::pascal(), &k);
        assert!((occ - 1.0).abs() < 1e-12, "occ {occ}");
    }

    #[test]
    fn register_pressure_limits_occupancy() {
        let lean = KernelResources {
            threads_per_block: 256,
            regs_per_thread: 32,
            shared_per_block: 0,
        };
        let fat = KernelResources {
            threads_per_block: 256,
            regs_per_thread: 128,
            shared_per_block: 0,
        };
        let sm = SmConfig::pascal();
        assert!(occupancy(&sm, &fat) < occupancy(&sm, &lean));
        // 128 regs/thread → 65536/4096 = 16 warps = 512 threads = 25 %.
        assert!((occupancy(&sm, &fat) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        let k = KernelResources {
            threads_per_block: 128,
            regs_per_thread: 16,
            shared_per_block: 48 * 1024, // two blocks fill shared memory
        };
        let occ = occupancy(&SmConfig::pascal(), &k);
        assert!((occ - 2.0 * 128.0 / 2048.0).abs() < 1e-12);
    }

    #[test]
    fn block_slot_limit_binds_small_blocks() {
        let k = KernelResources {
            threads_per_block: 32,
            regs_per_thread: 16,
            shared_per_block: 0,
        };
        // 32 blocks × 32 threads = 1024 of 2048 = 50 %.
        let occ = occupancy(&SmConfig::pascal(), &k);
        assert!((occ - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_kernels_reproduce_reported_occupancies() {
        // §VI-A: Slice-and-Dice ~80 %, Impatient ~47 %.
        let sm = SmConfig::pascal();
        let sd = occupancy(&sm, &KernelResources::slice_dice());
        let imp = occupancy(&sm, &KernelResources::impatient());
        assert!((0.70..=0.90).contains(&sd), "S&D occupancy {sd}");
        assert!((0.40..=0.55).contains(&imp), "Impatient occupancy {imp}");
        assert!(sd > 1.5 * imp);
    }
}
