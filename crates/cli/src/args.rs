//! Minimal `--flag value` / `--flag` argument parser (std-only, per the
//! workspace dependency policy).

use std::collections::BTreeMap;

/// Parsed options: `--key value` pairs and bare `--switch` flags.
pub struct Options {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Options {
    /// Parse an argument list. `--key value` stores a pair; a `--key`
    /// followed by another `--…` (or nothing) is a switch.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{a}`"));
            };
            if key.is_empty() {
                return Err("empty flag `--`".into());
            }
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    switches.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(Self { values, switches })
    }

    /// Integer option with default.
    pub fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }

    /// Float option with default.
    pub fn f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    /// String option with default.
    pub fn string(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Whether a bare switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let o = Options::parse(&argv(&["--n", "128", "--sorted", "--out", "x.pgm"])).unwrap();
        assert_eq!(o.usize("n", 0).unwrap(), 128);
        assert!(o.switch("sorted"));
        assert_eq!(o.string("out", ""), "x.pgm");
        assert!(!o.switch("missing"));
        assert_eq!(o.usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn trailing_switch() {
        let o = Options::parse(&argv(&["--cycle-accurate"])).unwrap();
        assert!(o.switch("cycle-accurate"));
    }

    #[test]
    fn rejects_positional_and_bad_numbers() {
        assert!(Options::parse(&argv(&["positional"])).is_err());
        let o = Options::parse(&argv(&["--n", "abc"])).unwrap();
        assert!(o.usize("n", 0).is_err());
        assert!(o.f64("n", 0.0).is_err());
    }
}
