//! CLI failure classification and stable process exit codes.
//!
//! Every command failure is classified into one of four categories so
//! scripts and CI can branch on the exit status without parsing stderr:
//!
//! | category   | exit code | meaning                                        |
//! |------------|-----------|------------------------------------------------|
//! | config     | 2         | a flag or parameter is invalid / out of range  |
//! | data       | 3         | input data malformed or an output file failed  |
//! | execution  | 4         | a contained execution failure (job panicked)   |
//! | budget     | 5         | run budget exhausted before any usable result  |
//! | overloaded | 7         | the daemon shed the job; retry after backoff   |
//!
//! Exit code 1 remains the generic "unknown command / no command" shell
//! convention; 0 is success. Code 6 is reserved (it is the wire byte of
//! the serving protocol's `Protocol` error category, which maps to a
//! data error here); 7 matches the `Overloaded` wire category, so a
//! script can treat "daemon busy, try later" differently from a hard
//! failure.

use std::fmt;

/// A classified CLI failure; see the module docs for the exit-code map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag or parameter is invalid or outside its supported range.
    Config(String),
    /// Input data is malformed, or reading/writing a file failed.
    Data(String),
    /// A contained execution failure (a worker-pool job panicked and no
    /// fallback produced a result).
    Execution(String),
    /// A run budget was exhausted before any usable result existed.
    Budget(String),
    /// The serving daemon refused the job under load; retrying after a
    /// backoff is expected to succeed.
    Overloaded(String),
}

impl CliError {
    /// The stable process exit code for this failure category.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Config(_) => 2,
            CliError::Data(_) => 3,
            CliError::Execution(_) => 4,
            CliError::Budget(_) => 5,
            CliError::Overloaded(_) => 7,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Config(m) => write!(f, "configuration error: {m}"),
            CliError::Data(m) => write!(f, "data error: {m}"),
            CliError::Execution(m) => write!(f, "execution error: {m}"),
            CliError::Budget(m) => write!(f, "budget exhausted: {m}"),
            CliError::Overloaded(m) => write!(f, "daemon overloaded: {m}"),
        }
    }
}

impl From<jigsaw_core::Error> for CliError {
    fn from(e: jigsaw_core::Error) -> Self {
        match e {
            jigsaw_core::Error::Config(m) => CliError::Config(m),
            jigsaw_core::Error::Data(m) => CliError::Data(m),
            jigsaw_core::Error::Execution(m) => CliError::Execution(m),
            jigsaw_core::Error::Budget(m) => CliError::Budget(m),
        }
    }
}

impl From<jigsaw_sim::SimError> for CliError {
    fn from(e: jigsaw_sim::SimError) -> Self {
        match e {
            jigsaw_sim::SimError::Config(m) => CliError::Config(m),
            jigsaw_sim::SimError::Data(m) => CliError::Data(m),
        }
    }
}

/// Filesystem failures (output images, traces, RTL) are data errors.
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Data(e.to_string())
    }
}

/// Bare-`String` errors come from flag parsing and engine/backend name
/// lookup — all configuration problems.
impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Config(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::Config(String::new()).exit_code(), 2);
        assert_eq!(CliError::Data(String::new()).exit_code(), 3);
        assert_eq!(CliError::Execution(String::new()).exit_code(), 4);
        assert_eq!(CliError::Budget(String::new()).exit_code(), 5);
        assert_eq!(CliError::Overloaded(String::new()).exit_code(), 7);
    }

    #[test]
    fn core_errors_map_by_category() {
        let e: CliError = jigsaw_core::Error::Budget("deadline".into()).into();
        assert_eq!(e.exit_code(), 5);
        let e: CliError = jigsaw_core::Error::Execution("job 3 panicked".into()).into();
        assert_eq!(e.exit_code(), 4);
        let e: CliError = jigsaw_core::Error::Data("NaN coordinate".into()).into();
        assert_eq!(e.exit_code(), 3);
        let e: CliError = jigsaw_core::Error::Config("grid too small".into()).into();
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn display_is_one_line() {
        let e = CliError::Execution("job 1 panicked on worker 0: boom".into());
        let s = e.to_string();
        assert!(s.starts_with("execution error: "));
        assert!(!s.contains('\n'));
    }
}
