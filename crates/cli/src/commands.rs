//! The `jigsaw` subcommands.

use crate::args::Options;
use crate::error::CliError;
use jigsaw_core::budget::RunBudget;
use jigsaw_core::config::GridParams;
use jigsaw_core::engine::ExecBackend;
use jigsaw_core::gridding::{
    BinnedGridder, Gridder, SerialGridder, SliceDiceGridder, SliceDiceMode,
};
use jigsaw_core::kernel::KernelKind;
use jigsaw_core::lut::KernelLut;
use jigsaw_core::metrics::nrmsd_percent;
use jigsaw_core::phantom::Phantom2d;
use jigsaw_core::recon::{cg_reconstruct_with, CgOptions, NormalOpKind};
use jigsaw_core::sense::{self, CoilMaps};
use jigsaw_core::serve::ServeOptions;
use jigsaw_core::traj;
use jigsaw_core::{NufftConfig, NufftPlan};
use jigsaw_num::C64;
use jigsaw_sim::power::{PowerModel, Variant};
use jigsaw_sim::{Jigsaw2d, Jigsaw3dSlice, JigsawConfig};
use jigsaw_telemetry as telemetry;
use std::io::Write;

/// Top-level usage text.
pub const USAGE: &str = "\
jigsaw — Slice-and-Dice NuFFT and JIGSAW accelerator simulator

USAGE:
    jigsaw <command> [--flag value]...

COMMANDS:
    recon       Reconstruct a Shepp-Logan phantom from synthetic radial k-space
                  --n 192 --spokes <auto> --engine slice-dice|serial|binned
                  --backend pooled|scoped (parallel execution engine)
                  --coils 1 (>1 = planned multi-coil batch via the worker pool)
                  --cg 0 (CG iterations; 0 = direct adjoint) --out out/recon.pgm
                  --normal-op gridded|toeplitz (CG normal operator; toeplitz
                  = gridding-free Toeplitz fast path, falls back to gridded
                  if the kernel build degrades)
                  --time-budget-ms 0 (0 = unlimited; CG returns its best
                  iterate when the wall-clock budget runs out)
    simulate    Run the JIGSAW 2-D accelerator model on a synthetic stream
                  --grid 512 --samples 100000 [--cycle-accurate] [--trace N]
    simulate3d  Run the JIGSAW 3D Slice variant
                  --grid 32 --samples 20000 [--sorted]
    gridbench   Time every gridding engine on one problem, on both the
                pooled and the legacy scoped execution backends
                  --n 256 --m 100000
    profile     Run a canned radial multi-coil CG-SENSE recon with
                telemetry forced on and emit a chrome://tracing /
                Perfetto-loadable trace
                  --n 256 --coils 8 --cg 2 [--samples N]
                  --trace-out out/trace.json [--metrics]
    serve       Run the plan-cached reconstruction daemon (long-lived;
                exits 0 after a client sends the shutdown frame)
                  --socket /tmp/jigsaw.sock | --stdio (frames on stdin/stdout)
                  --cache-capacity 8 (LRU plan-cache bound)
                  --jobs 2 (executor threads) --default-budget-ms 0
                  --max-queue-depth 1024 --max-queued-bytes 1073741824
                  (bounded admission: normal-priority jobs beyond either
                  bound are refused with a retry-after hint)
                  --watchdog-multiple 8 (cancel jobs stuck past this
                  multiple of their budget)
                  --snapshot <path> (durable plan-cache snapshot: loaded
                  on start for a warm restart, written on graceful
                  drain; a corrupt file degrades to a cold start)
                  --snapshot-every-secs 0 (0 = only on drain; >0 also
                  rewrites the snapshot periodically in the background)
                  SIGTERM drains gracefully in --socket mode: finish
                  queued jobs, snapshot, exit 0
    request     Client mode: submit synthetic radial jobs to a daemon
                  --socket /tmp/jigsaw.sock --n 64 --spokes <auto>
                  --count 1 [--high] [--budget-ms 0] [--tag 1]
                  --retries 0 --backoff-ms 50 (resubmit shed jobs with
                  exponential backoff, honoring the daemon's hint)
                  --timeout-ms 120000 (per-reply receive deadline)
                  [--ping] [--shutdown] (probe / stop the daemon instead)
                  [--drain] (graceful stop: the daemon finishes queued
                  jobs, snapshots its plan cache, and exits 0)
                  [--stats [--format table|json|prom]] (scrape the live
                  introspection snapshot instead of submitting)
    top         Poll a daemon's stats on an interval and render a
                refreshing dashboard (queue, cache, windowed latency,
                per-worker utilization)
                  --socket /tmp/jigsaw.sock --interval-ms 1000
                  --iterations 0 (0 = until interrupted)
    gpustats    GPU §VI-A analysis (L2 hit rate, occupancy, divergence)
                  --grid 1024 --samples 100000
    emit-rtl    Generate the SystemVerilog select unit, weight-SRAM
                $readmemh image, and self-checking testbench
                  --grid 1024 --out rtl/
    info        Print the supported hardware parameter ranges (Table I)
                and the power/area model (Table II)
    help        Show this message

TELEMETRY (recon, gridbench, profile):
    --trace-out <path.json>   write buffered spans as Chrome trace_event
                              JSON (load in chrome://tracing or Perfetto)
    --metrics                 print the metrics-registry snapshot table
    JIGSAW_TELEMETRY=0        disable all collection (overhead: one branch)

ROBUSTNESS:
    JIGSAW_FALLBACK=0         disable the automatic serial fallback when a
                              pooled job fails (failures become hard errors)
    JIGSAW_FAULTS=site=S,seed=N,rate=F,fires=K
                              arm deterministic fault injection at a
                              registered fault point (testing only)

EXIT CODES:
    0 success · 1 usage · 2 configuration error · 3 data error
    4 execution error (contained job panic) · 5 budget exhausted
    7 daemon overloaded (job shed; retry after the suggested backoff)
";

type CmdResult = Result<(), CliError>;

/// Shared `--trace-out <path.json>` / `--metrics` handling: write the
/// buffered span stream as a chrome trace and/or print the metrics
/// registry snapshot. Call once at the end of a command.
fn emit_telemetry(o: &Options) -> CmdResult {
    let dropped = telemetry::sync_dropped_events();
    if dropped > 0 {
        eprintln!(
            "warning: {dropped} span event(s) dropped by the ring buffer \
             (telemetry.dropped_events); trace and metrics are incomplete"
        );
    }
    let trace_out = o.string("trace-out", "");
    if !trace_out.is_empty() {
        if !telemetry::enabled() {
            eprintln!("warning: telemetry is disabled (JIGSAW_TELEMETRY=0); trace will be empty");
        }
        let n = telemetry::export::write_chrome_trace(std::path::Path::new(&trace_out))
            .map_err(|e| CliError::Data(format!("writing {trace_out}: {e}")))?;
        println!("wrote {n} trace events to {trace_out}");
    }
    if o.switch("metrics") {
        let snap = telemetry::global().snapshot();
        print!("{}", snap.to_table());
    }
    Ok(())
}

fn write_pgm(path: &str, image: &[C64], n: usize) -> Result<(), CliError> {
    let mags: Vec<f64> = image.iter().map(|z| z.abs()).collect();
    let hi = mags.iter().cloned().fold(0.0, f64::max).max(1e-30);
    let mut buf = format!("P5\n{n} {n}\n255\n").into_bytes();
    buf.extend(mags.iter().map(|m| (m / hi * 255.0).round() as u8));
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Data(format!("creating {}: {e}", dir.display())))?;
    }
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(&buf))
        .map_err(|e| CliError::Data(format!("writing {path}: {e}")))
}

fn backend_by_name(name: &str) -> Result<ExecBackend, String> {
    match name {
        "pooled" => Ok(ExecBackend::Pooled),
        "scoped" => Ok(ExecBackend::Scoped),
        other => Err(format!("unknown backend `{other}` (pooled | scoped)")),
    }
}

fn normal_op_by_name(name: &str) -> Result<NormalOpKind, String> {
    match name {
        "gridded" => Ok(NormalOpKind::Gridded),
        "toeplitz" => Ok(NormalOpKind::Toeplitz),
        other => Err(format!("unknown normal-op `{other}` (gridded | toeplitz)")),
    }
}

fn engine_by_name(name: &str, backend: ExecBackend) -> Result<Box<dyn Gridder<f64, 2>>, String> {
    match name {
        "serial" => Ok(Box::new(SerialGridder)),
        "binned" => Ok(Box::new(BinnedGridder {
            backend,
            ..Default::default()
        })),
        "slice-dice" => Ok(Box::new(SliceDiceGridder::default().with_backend(backend))),
        "slice-dice-serial" => Ok(Box::new(SliceDiceGridder::new(SliceDiceMode::Serial))),
        other => Err(format!(
            "unknown engine `{other}` (serial | binned | slice-dice | slice-dice-serial)"
        )),
    }
}

/// `jigsaw recon`
pub fn recon(o: &Options) -> CmdResult {
    let n = o.usize("n", 192)?;
    let default_spokes = (1.2 * core::f64::consts::FRAC_PI_2 * n as f64) as usize;
    let spokes = o.usize("spokes", default_spokes)?;
    let cg_iters = o.usize("cg", 0)?;
    let lambda = o.f64("lambda", 1e-5)?;
    let coils = o.usize("coils", 1)?;
    let out = o.string("out", "out/recon.pgm");
    let budget_ms = o.usize("time-budget-ms", 0)?;
    let budget = if budget_ms > 0 {
        RunBudget::with_time_ms(budget_ms as u64)
    } else {
        RunBudget::unlimited()
    };
    let backend = backend_by_name(&o.string("backend", "pooled"))?;
    let engine = engine_by_name(&o.string("engine", "slice-dice"), backend)?;
    let normal_op = normal_op_by_name(&o.string("normal-op", "gridded"))?;

    let phantom = Phantom2d::shepp_logan();
    let mut coords = traj::radial_2d(spokes, 2 * n, true);
    traj::shuffle(&mut coords, 7);
    let data = phantom.kspace(n, &coords);
    println!(
        "acquired {} samples over {spokes} golden-angle spokes",
        coords.len()
    );

    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n))?;
    let image = if coils > 1 {
        // Multi-coil: modulate the acquisition by synthetic sensitivity
        // maps and reconstruct with the planned batched adjoint — the
        // window decomposition is computed once and every coil streams
        // through the persistent worker pool.
        let maps = CoilMaps::synthetic(n, coils);
        let truth = phantom.rasterize_aa(n, 4);
        let coil_data = sense::acquire(&plan, &maps, &truth, &coords)?;
        if cg_iters > 0 {
            // Iterative CG-SENSE over the selected normal operator.
            let t0 = std::time::Instant::now();
            let cg = sense::cg_sense_with(
                &plan,
                &maps,
                &coil_data,
                &coords,
                engine.as_ref(),
                &CgOptions {
                    max_iterations: cg_iters,
                    tolerance: 1e-8,
                    lambda,
                    budget,
                },
                normal_op,
            )?;
            println!(
                "CG-SENSE ({normal_op:?}): {} iterations in {:.1} ms, final relative residual {:.2e}",
                cg.residuals.len(),
                t0.elapsed().as_secs_f64() * 1e3,
                cg.residuals.last().copied().unwrap_or(1.0)
            );
            if !cg.diagnostic.is_clean() {
                eprintln!("warning: CG stopped early: {}", cg.diagnostic);
            }
            let norm = |v: &[C64]| -> Vec<C64> {
                let p = v.iter().map(|z| z.abs()).fold(0.0, f64::max).max(1e-30);
                v.iter().map(|z| z.unscale(p)).collect()
            };
            println!(
                "quality vs phantom: NRMSD {:.2}%",
                nrmsd_percent(&norm(&cg.image), &norm(&truth))
            );
            write_pgm(&out, &cg.image, n)?;
            println!("wrote {out}");
            return emit_telemetry(o);
        }
        // Density compensation per coil (same radial ramp as below).
        let weighted: Vec<Vec<C64>> = coil_data
            .iter()
            .map(|d| {
                coords
                    .iter()
                    .zip(d)
                    .map(|(c, v)| {
                        let r = (c[0] * c[0] + c[1] * c[1]).sqrt();
                        v.scale(r.max(0.125 / (2.0 * n as f64)))
                    })
                    .collect()
            })
            .collect();
        let t0 = std::time::Instant::now();
        let traj_plan = plan.plan_trajectory(&coords)?;
        let combined = sense::adjoint_planned(&plan, &maps, &weighted, &traj_plan)?;
        println!(
            "planned {}-coil adjoint: plan {:.1} ms + batch {:.1} ms",
            coils,
            traj_plan.plan_seconds() * 1e3,
            t0.elapsed().as_secs_f64() * 1e3 - traj_plan.plan_seconds() * 1e3
        );
        combined
    } else if cg_iters == 0 {
        // Ramp-compensated direct adjoint.
        let weighted: Vec<C64> = coords
            .iter()
            .zip(&data)
            .map(|(c, v)| {
                let r = (c[0] * c[0] + c[1] * c[1]).sqrt();
                v.scale(r.max(0.125 / (2.0 * n as f64)))
            })
            .collect();
        let outp = plan.adjoint(&coords, &weighted, engine.as_ref())?;
        println!(
            "direct adjoint: gridding {:.1} ms ({:.1}% of total)",
            outp.timings.interp_seconds * 1e3,
            100.0 * outp.timings.interp_fraction()
        );
        outp.image
    } else {
        let cg = cg_reconstruct_with(
            &plan,
            &coords,
            &data,
            &[],
            engine.as_ref(),
            &CgOptions {
                max_iterations: cg_iters,
                tolerance: 1e-8,
                lambda,
                budget,
            },
            normal_op,
        )?;
        println!(
            "CG: {} iterations, final relative residual {:.2e}",
            cg.residuals.len(),
            cg.residuals.last().copied().unwrap_or(1.0)
        );
        if !cg.diagnostic.is_clean() {
            eprintln!("warning: CG stopped early: {}", cg.diagnostic);
        }
        cg.image
    };

    let truth = phantom.rasterize_aa(n, 4);
    let norm = |v: &[C64]| -> Vec<C64> {
        let p = v.iter().map(|z| z.abs()).fold(0.0, f64::max).max(1e-30);
        v.iter().map(|z| z.unscale(p)).collect()
    };
    println!(
        "quality vs phantom: NRMSD {:.2}%",
        nrmsd_percent(&norm(&image), &norm(&truth))
    );
    write_pgm(&out, &image, n)?;
    println!("wrote {out}");
    emit_telemetry(o)
}

/// `jigsaw simulate`
pub fn simulate(o: &Options) -> CmdResult {
    let grid = o.usize("grid", 512)?;
    let m = o.usize("samples", 100_000)?;
    let cycle_accurate = o.switch("cycle-accurate");
    let trace_cycles = o.usize("trace", 0)?;

    let cfg = JigsawConfig {
        grid,
        ..JigsawConfig::paper_default()
    };
    let mut hw = Jigsaw2d::new(cfg.clone())?;
    let coords: Vec<[f64; 2]> = (0..m)
        .map(|i| {
            let t = i as f64;
            [
                (t * 0.61803398875).rem_euclid(1.0) * grid as f64,
                (t * 0.3819660113).rem_euclid(1.0) * grid as f64,
            ]
        })
        .collect();
    let values = vec![C64::new(0.5, -0.25); m];
    let (stream, _) = hw.quantize_inputs(&coords, &values)?;

    if trace_cycles > 0 {
        println!("pipeline trace (first {trace_cycles} cycles):");
        print!(
            "{}",
            jigsaw_sim::trace::render(&jigsaw_sim::trace::trace_2d(m as u64, trace_cycles as u64))
        );
    }
    let run = if cycle_accurate {
        println!("running cycle-accurate pipeline simulation…");
        hw.run_cycle_accurate(&stream)
    } else {
        hw.run(&stream)
    };
    let r = &run.report;
    println!("samples         : {m}");
    println!(
        "compute cycles  : {} (M + 12 = {})",
        r.compute_cycles,
        m + 12
    );
    println!("readout cycles  : {}", r.readout_cycles);
    println!("gridding time   : {}", fmt_time(r.gridding_seconds()));
    println!(
        "ops             : {} checks, {} LUT reads, {} MACs, {} RMWs, {} saturations",
        r.ops.select_checks, r.ops.lut_reads, r.ops.interp_macs, r.ops.accum_rmw, r.ops.saturations
    );
    let pm = PowerModel::calibrated();
    println!(
        "power/area/energy: {:.1} mW, {:.2} mm², {:.2} µJ",
        pm.power_mw(&cfg, Variant::TwoD, (cfg.width * cfg.width) as f64, true),
        pm.area_mm2(&cfg, Variant::TwoD, true),
        pm.energy_joules(&cfg, Variant::TwoD, r) * 1e6
    );
    Ok(())
}

/// `jigsaw simulate3d`
pub fn simulate3d(o: &Options) -> CmdResult {
    let grid = o.usize("grid", 32)?;
    let m = o.usize("samples", 20_000)?;
    let sorted = o.switch("sorted");
    let cfg = JigsawConfig {
        grid,
        ..JigsawConfig::paper_default()
    };
    let mut hw = Jigsaw3dSlice::new(cfg)?;
    let coords: Vec<[f64; 3]> = (0..m)
        .map(|i| {
            let t = i as f64;
            [
                (t * 0.7548776662).rem_euclid(1.0) * grid as f64,
                (t * 0.5698402910).rem_euclid(1.0) * grid as f64,
                (t * 0.3028448642).rem_euclid(1.0) * grid as f64,
            ]
        })
        .collect();
    let values = vec![C64::new(0.3, 0.1); m];
    let (stream, _) = hw.quantize_inputs(&coords, &values)?;
    let run = hw.run(&stream, sorted);
    println!(
        "mode            : {}",
        if sorted { "Z-sorted" } else { "unsorted" }
    );
    println!("compute cycles  : {}", run.report.compute_cycles);
    println!(
        "law             : {}",
        if sorted {
            format!("Σ(|bin_z| + 15) = {}·Wz + 15·Nz", m)
        } else {
            format!("(M + 15)·Nz = {}", (m as u64 + 15) * grid as u64)
        }
    );
    println!(
        "gridding time   : {}",
        fmt_time(run.report.gridding_seconds())
    );
    Ok(())
}

/// `jigsaw gridbench`
pub fn gridbench(o: &Options) -> CmdResult {
    let n = o.usize("n", 256)?;
    let m = o.usize("m", 100_000)?;
    let g = 2 * n;
    let params = GridParams {
        grid: g,
        width: 6,
        table_oversampling: 32,
        tile: 8,
        kernel: KernelKind::Auto.resolve(6, 2.0),
    };
    let lut = KernelLut::from_params(&params);
    let mut cyc = traj::radial_2d(m.div_ceil(2 * n), 2 * n, true);
    cyc.truncate(m);
    traj::shuffle(&mut cyc, 3);
    let values = Phantom2d::shepp_logan().kspace(n, &cyc);
    let coords: Vec<[f64; 2]> = cyc
        .iter()
        .map(|c| {
            [
                c[0].rem_euclid(1.0) * g as f64,
                c[1].rem_euclid(1.0) * g as f64,
            ]
        })
        .collect();
    println!("{m} samples onto a {g}² grid (W = 6, L = 32):\n");
    let mut engines: Vec<(String, Box<dyn Gridder<f64, 2>>)> = vec![
        ("serial".into(), Box::new(SerialGridder)),
        (
            "slice-dice serial".into(),
            Box::new(SliceDiceGridder::new(SliceDiceMode::Serial)),
        ),
    ];
    for backend in [ExecBackend::Pooled, ExecBackend::Scoped] {
        let tag = match backend {
            ExecBackend::Pooled => "pooled",
            ExecBackend::Scoped => "scoped",
        };
        engines.push((
            format!("binned [{tag}]"),
            Box::new(BinnedGridder {
                backend,
                ..Default::default()
            }),
        ));
        engines.push((
            format!("slice-dice parallel [{tag}]"),
            Box::new(SliceDiceGridder::default().with_backend(backend)),
        ));
    }
    for (name, e) in &engines {
        let mut out = vec![C64::zeroed(); g * g];
        let stats = e.grid(&params, &lut, &coords, &values, &mut out);
        println!(
            "{name:>28}: {:>10}  (presort {}, {} checks, {:.2}× duplication)",
            fmt_time(stats.total_seconds()),
            fmt_time(stats.presort_seconds),
            stats.boundary_checks,
            stats.duplication_factor()
        );
    }
    emit_telemetry(o)
}

/// `jigsaw profile` — canned radial multi-coil CG-SENSE reconstruction
/// with telemetry forced on, touching every instrumented subsystem
/// (engine dispatch, gridding, FFT, NuFFT phases, CG recon) so the
/// resulting chrome trace shows the full pipeline with per-worker lanes.
pub fn profile(o: &Options) -> CmdResult {
    // Force collection on regardless of JIGSAW_TELEMETRY: profiling is
    // the explicit point of this command.
    telemetry::set_enabled(true);
    telemetry::set_thread_lane("main");
    let n = o.usize("n", 256)?;
    let coils = o.usize("coils", 8)?;
    let cg_iters = o.usize("cg", 2)?;
    let default_spokes = (1.2 * core::f64::consts::FRAC_PI_2 * n as f64) as usize;
    let spokes = o.usize("spokes", default_spokes)?;

    let mut coords = traj::radial_2d(spokes, 2 * n, true);
    traj::shuffle(&mut coords, 7);
    let cap = o.usize("samples", coords.len())?;
    coords.truncate(cap);
    println!(
        "profiling: {}-coil radial CG-SENSE, N = {n}, M = {}, {cg_iters} CG iterations",
        coils,
        coords.len()
    );

    let t0 = std::time::Instant::now();
    let residual = {
        let _root = telemetry::span!("recon.profile", {
            n: n,
            coils: coils,
            m: coords.len()
        });
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n))?;
        let maps = CoilMaps::synthetic(n, coils);
        let truth = Phantom2d::shepp_logan().rasterize_aa(n, 4);
        let coil_data = sense::acquire(&plan, &maps, &truth, &coords)?;

        // Planned batched adjoint: one coil per pooled job, so the trace
        // gets per-worker `jigsaw-worker-*` lanes with coil spans.
        let traj_plan = plan.plan_trajectory(&coords)?;
        let _combined = sense::adjoint_planned(&plan, &maps, &coil_data, &traj_plan)?;

        // CG-SENSE: per-iteration spans + residual counter track.
        let out = sense::cg_sense(
            &plan,
            &maps,
            &coil_data,
            &coords,
            &SliceDiceGridder::default(),
            &CgOptions {
                max_iterations: cg_iters,
                tolerance: 1e-8,
                lambda: 1e-5,
                budget: Default::default(),
            },
        )?;
        out.residuals.last().copied().unwrap_or(1.0)
    };
    println!(
        "recon complete in {:.1} ms (final relative residual {residual:.2e})",
        t0.elapsed().as_secs_f64() * 1e3
    );
    if o.string("trace-out", "").is_empty() && !o.switch("metrics") {
        eprintln!("hint: pass --trace-out trace.json and/or --metrics to export the profile");
    }
    emit_telemetry(o)
}

/// SIGTERM latch for graceful drain: the handler only stores into this
/// flag (async-signal-safe by construction — no locks, no allocation);
/// the daemon's accept loop polls it between connections.
static DRAIN_REQUESTED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    DRAIN_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Route SIGTERM to [`on_sigterm`] so `kill <pid>` drains the daemon
/// (finish queued jobs, snapshot, exit 0) instead of killing it.
fn install_sigterm_drain() {
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: libc `signal` with a handler that only writes an
    // AtomicBool; both the call and the handler are async-signal-safe.
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

/// `jigsaw serve` — the long-lived plan-cached reconstruction daemon.
pub fn serve(o: &Options) -> CmdResult {
    let snapshot = o.string("snapshot", "");
    let opts = ServeOptions {
        cache_capacity: o.usize("cache-capacity", 8)?,
        executors: o.usize("jobs", 2)?,
        default_budget_ms: o.usize("default-budget-ms", 0)? as u64,
        max_queue_depth: o.usize("max-queue-depth", 1024)?,
        max_queued_bytes: o.usize("max-queued-bytes", 1 << 30)?,
        watchdog_multiple: o.usize("watchdog-multiple", 8)? as u32,
        snapshot_path: (!snapshot.is_empty()).then(|| std::path::PathBuf::from(&snapshot)),
        snapshot_every_secs: o.usize("snapshot-every-secs", 0)? as u64,
        drain_signal: Some(&DRAIN_REQUESTED),
    };
    if o.switch("stdio") {
        // stdout carries response frames in this mode; diagnostics go
        // to stderr only.
        eprintln!(
            "jigsaw serve: stdio framing, {} executors, plan cache {} entries",
            opts.executors, opts.cache_capacity
        );
        jigsaw_core::serve::serve_stdio(&opts)?;
    } else {
        let sock = o.string("socket", "");
        if sock.is_empty() {
            return Err(CliError::Config(
                "serve needs --socket <path> or --stdio".into(),
            ));
        }
        install_sigterm_drain();
        eprintln!(
            "jigsaw serve: listening on {sock}, {} executors, plan cache {} entries",
            opts.executors, opts.cache_capacity
        );
        jigsaw_core::serve::serve_unix(std::path::Path::new(&sock), &opts)?;
    }
    // Post-shutdown trace export: spans from every job the daemon ran,
    // each tagged with its request id (`req` arg), so a trace can be
    // filtered to one request end-to-end. Diagnostics stay on stderr —
    // stdout carries response frames in stdio mode.
    let trace_out = o.string("trace-out", "");
    if !trace_out.is_empty() {
        let n = telemetry::export::write_chrome_trace(std::path::Path::new(&trace_out))
            .map_err(|e| CliError::Data(format!("writing {trace_out}: {e}")))?;
        eprintln!("jigsaw serve: wrote {n} trace events to {trace_out}");
    }
    eprintln!("jigsaw serve: clean shutdown");
    Ok(())
}

fn protocol_to_cli(e: jigsaw_core::serve::ProtocolError) -> CliError {
    CliError::Data(format!("serve protocol: {e}"))
}

/// `jigsaw request` — client mode: submit synthetic radial jobs to a
/// running daemon (exercises the wire protocol end to end; also the
/// demo client for the README).
pub fn request(o: &Options) -> CmdResult {
    use jigsaw_core::serve::{Frame, JobRequest, Priority, RetryPolicy, ServeClient};
    let sock = o.string("socket", "");
    if sock.is_empty() {
        return Err(CliError::Config("request needs --socket <path>".into()));
    }
    let timeout_ms = o.usize("timeout-ms", 120_000)?;
    if timeout_ms == 0 {
        return Err(CliError::Config(
            "--timeout-ms must be positive (a zero receive deadline would hang forever)".into(),
        ));
    }
    let mut client = ServeClient::connect(std::path::Path::new(&sock))
        .map_err(|e| CliError::Data(format!("connecting to {sock}: {e}")))?;
    client
        .set_read_timeout(std::time::Duration::from_millis(timeout_ms as u64))
        .map_err(|e| CliError::Data(format!("configuring socket: {e}")))?;
    if o.switch("ping") {
        client.ping().map_err(protocol_to_cli)?;
        println!("pong");
        return Ok(());
    }
    if o.switch("shutdown") {
        client.shutdown().map_err(protocol_to_cli)?;
        println!("daemon acknowledged shutdown");
        return Ok(());
    }
    if o.switch("drain") {
        client.drain().map_err(protocol_to_cli)?;
        println!("daemon acknowledged drain");
        return Ok(());
    }
    if o.switch("stats") {
        let snap = client.stats().map_err(protocol_to_cli)?;
        match o.string("format", "table").as_str() {
            "table" => print!("{}", snap.to_table()),
            "json" => print!("{}", snap.to_json()),
            "prom" => print!("{}", snap.to_prometheus()),
            other => {
                return Err(CliError::Config(format!(
                    "unknown stats format `{other}` (table | json | prom)"
                )))
            }
        }
        return Ok(());
    }

    let n = o.usize("n", 64)?;
    let default_spokes = (1.2 * core::f64::consts::FRAC_PI_2 * n as f64) as usize;
    let spokes = o.usize("spokes", default_spokes)?;
    let count = o.usize("count", 1)?;
    let budget_ms = o.usize("budget-ms", 0)?;
    let tag0 = o.usize("tag", 1)? as u64;
    let priority = if o.switch("high") {
        Priority::High
    } else {
        Priority::Normal
    };
    let policy = RetryPolicy {
        retries: o.usize("retries", 0)? as u32,
        backoff_ms: o.usize("backoff-ms", 50)? as u64,
        seed: tag0,
    };
    let mut coords = traj::radial_2d(spokes, 2 * n, true);
    traj::shuffle(&mut coords, 7);
    let values = Phantom2d::shepp_logan().kspace(n, &coords);
    for i in 0..count {
        let req = JobRequest {
            tag: tag0 + i as u64,
            priority,
            n: n as u32,
            budget_ms: budget_ms as u32,
            coords: coords.clone(),
            values: values.clone(),
        };
        let t0 = std::time::Instant::now();
        match client
            .roundtrip_with_retry(&req, &policy)
            .map_err(protocol_to_cli)?
        {
            Frame::Result(res) => {
                println!(
                    "job {}: {}² image in {} ({})",
                    res.tag,
                    res.n,
                    fmt_time(t0.elapsed().as_secs_f64()),
                    if res.cache_hit {
                        "cache hit"
                    } else {
                        "cold plan"
                    }
                );
            }
            Frame::Error(err) => {
                use jigsaw_core::serve::ErrorCategory;
                let msg = format!("job {}: {}", err.tag, err.message);
                return Err(match err.category {
                    ErrorCategory::Config => CliError::Config(msg),
                    ErrorCategory::Data | ErrorCategory::Protocol => CliError::Data(msg),
                    ErrorCategory::Execution => CliError::Execution(msg),
                    ErrorCategory::Budget => CliError::Budget(msg),
                    ErrorCategory::Overloaded => CliError::Overloaded(msg),
                });
            }
            Frame::Overloaded(ov) => {
                return Err(CliError::Overloaded(format!(
                    "job {}: {} (shed: {}; retry after {} ms)",
                    ov.tag,
                    ov.message,
                    ov.reason.label(),
                    ov.retry_after_ms
                )));
            }
            other => return Err(CliError::Data(format!("unexpected daemon frame {other:?}"))),
        }
    }
    Ok(())
}

/// One refresh of the `jigsaw top` dashboard, rendered to a string so
/// the unit tests can pin its shape without a daemon.
fn render_top(snap: &jigsaw_core::serve::StatsSnapshot, scrape: usize, total: usize) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let progress = if total > 0 {
        format!(" — scrape {scrape}/{total}")
    } else {
        format!(" — scrape {scrape}")
    };
    let _ = writeln!(
        s,
        "jigsaw top — uptime {}{progress}",
        fmt_time(snap.uptime_secs())
    );
    let _ = writeln!(
        s,
        "queue     : {} queued ({} high priority)",
        snap.queue_depth, snap.queue_high
    );
    let _ = writeln!(
        s,
        "plan cache: {} hit / {} miss / {} evict  (hit rate {:.1}%, {}/{} resident)",
        snap.cache.hits,
        snap.cache.misses,
        snap.cache.evictions,
        100.0 * snap.cache.hit_rate(),
        snap.cache.len,
        snap.cache.capacity
    );
    for (label, name) in [
        ("latency 60s", "serve.job_latency_ns.60s"),
        ("wait (norm)", "serve.queue_wait_ns.normal.60s"),
        ("wait (high)", "serve.queue_wait_ns.high.60s"),
    ] {
        if let Some(w) = snap.window(name) {
            let _ = writeln!(
                s,
                "{label}: p50 {}  p99 {}  ({} samples)",
                fmt_time(w.hist.quantile_estimate(0.5) / 1e9),
                fmt_time(w.hist.quantile_estimate(0.99) / 1e9),
                w.hist.count
            );
        }
    }
    let _ = writeln!(s, "workers   :");
    for (i, (w, u)) in snap
        .workers
        .iter()
        .zip(snap.worker_utilization())
        .enumerate()
    {
        let filled = (u * 20.0).round() as usize;
        let _ = writeln!(
            s,
            "  {i:>2} [{}{}] {:>5.1}%  ({} jobs)",
            "#".repeat(filled.min(20)),
            "-".repeat(20 - filled.min(20)),
            100.0 * u,
            w.jobs
        );
    }
    if let Some(e) = snap.flight.last() {
        let _ = writeln!(s, "last event: {e}");
    }
    s
}

/// `jigsaw top` — poll a daemon's stats on an interval and render a
/// refreshing terminal dashboard (queue depth, cache hit rate, windowed
/// latency quantiles, per-worker utilization bars).
pub fn top(o: &Options) -> CmdResult {
    use jigsaw_core::serve::ServeClient;
    let sock = o.string("socket", "");
    if sock.is_empty() {
        return Err(CliError::Config("top needs --socket <path>".into()));
    }
    let interval = std::time::Duration::from_millis(o.usize("interval-ms", 1000)? as u64);
    // 0 = poll until the daemon goes away (or ^C).
    let iterations = o.usize("iterations", 0)?;
    let mut scrape = 0usize;
    loop {
        let mut client = ServeClient::connect(std::path::Path::new(&sock))
            .map_err(|e| CliError::Data(format!("connecting to {sock}: {e}")))?;
        client
            .set_read_timeout(std::time::Duration::from_secs(10))
            .map_err(|e| CliError::Data(format!("configuring socket: {e}")))?;
        let snap = client.stats().map_err(protocol_to_cli)?;
        scrape += 1;
        if scrape > 1 {
            // ANSI clear + home: refresh in place on real terminals.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(&snap, scrape, iterations));
        let _ = std::io::stdout().flush();
        if iterations > 0 && scrape >= iterations {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// `jigsaw gpustats`
pub fn gpustats(o: &Options) -> CmdResult {
    let grid = o.usize("grid", 1024)?;
    let m = o.usize("samples", 100_000)?;
    let params = GridParams {
        grid,
        width: 6,
        table_oversampling: 32,
        tile: 8,
        kernel: KernelKind::Auto.resolve(6, 2.0),
    };
    let mut cyc = traj::radial_2d(m.div_ceil(512), 512, true);
    cyc.truncate(m);
    traj::shuffle(&mut cyc, 5);
    let coords: Vec<[f64; 2]> = cyc
        .iter()
        .map(|c| {
            [
                c[0].rem_euclid(1.0) * grid as f64,
                c[1].rem_euclid(1.0) * grid as f64,
            ]
        })
        .collect();
    let cfg = jigsaw_gpu::ReplayConfig::default();
    for stats in [
        jigsaw_gpu::replay_slice_dice(&params, &coords, &cfg),
        jigsaw_gpu::replay_impatient(&params, &coords, &cfg),
    ] {
        println!(
            "{:45} L2 read hit {:5.1}%  lanes {:5.1}%  occupancy {:5.1}%  weight-FLOPs {}",
            stats.name,
            100.0 * stats.l2_hit_rate,
            100.0 * stats.lane_efficiency,
            100.0 * stats.occupancy,
            stats.weight_flops
        );
    }
    Ok(())
}

/// `jigsaw emit-rtl`
pub fn emit_rtl(o: &Options) -> CmdResult {
    let grid = o.usize("grid", 1024)?;
    let width = o.usize("width", 6)?;
    let l = o.usize("table-oversampling", 32)?;
    let dir = o.string("out", "rtl");
    let cfg = JigsawConfig {
        grid,
        width,
        table_oversampling: l,
        ..JigsawConfig::paper_default()
    };
    cfg.validate()?;
    std::fs::create_dir_all(&dir).map_err(|e| CliError::Data(format!("creating {dir}: {e}")))?;
    let files = [
        ("jigsaw_select.sv", jigsaw_sim::rtl::emit_select_unit(&cfg)),
        (
            "jigsaw_weights.memh",
            jigsaw_sim::rtl::emit_weight_memh(&cfg),
        ),
        (
            "jigsaw_select_tb.sv",
            jigsaw_sim::rtl::emit_testbench(&cfg, 200),
        ),
    ];
    for (name, contents) in files {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, contents)
            .map_err(|e| CliError::Data(format!("writing {path}: {e}")))?;
        println!("wrote {path}");
    }
    println!(
        "\nSimulate with e.g.: iverilog -g2012 {dir}/jigsaw_select.sv {dir}/jigsaw_select_tb.sv"
    );
    Ok(())
}

/// `jigsaw info`
pub fn info() -> CmdResult {
    println!("Table I — supported JIGSAW parameters:");
    println!("  target grid N        : 8–1024 (×8 multiples)");
    println!("  virtual tile T       : 8");
    println!("  window width W       : 1–8");
    println!("  table oversampling L : 1–64 (power of two)");
    println!("  pipeline width       : 32-bit fixed point");
    println!("  weight width         : 16-bit (Q1.15)");
    println!();
    println!("Table II — modeled synthesis (16 nm, 1.0 GHz):");
    for (label, p, a) in PowerModel::calibrated().table_ii() {
        println!("  {label:<26} {p:>8.2} mW  {a:>6.2} mm²");
    }
    Ok(())
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_lookup() {
        for name in ["serial", "binned", "slice-dice", "slice-dice-serial"] {
            assert!(engine_by_name(name, ExecBackend::Pooled).is_ok(), "{name}");
        }
        assert!(engine_by_name("warp-drive", ExecBackend::Pooled).is_err());
        assert!(backend_by_name("pooled").is_ok());
        assert!(backend_by_name("scoped").is_ok());
        assert!(backend_by_name("gpu").is_err());
    }

    #[test]
    fn pgm_writer_creates_file() {
        let img = vec![C64::new(1.0, 0.0); 9];
        let path = "/tmp/jigsaw_cli_test/out.pgm";
        write_pgm(path, &img, 3).unwrap();
        let data = std::fs::read(path).unwrap();
        assert!(data.starts_with(b"P5\n3 3\n255\n"));
    }

    #[test]
    fn info_runs() {
        info().unwrap();
    }

    #[test]
    fn top_dashboard_renders() {
        use jigsaw_core::serve::{
            CacheStats, StatsSnapshot, WindowStats, WorkerStats, STATS_VERSION,
        };
        let snap = StatsSnapshot {
            stats_version: STATS_VERSION,
            uptime_ns: 2_000_000_000,
            queue_depth: 3,
            queue_high: 1,
            cache: CacheStats {
                hits: 9,
                misses: 1,
                evictions: 0,
                len: 1,
                capacity: 8,
            },
            workers: vec![WorkerStats {
                busy_ns: 1_000_000_000,
                jobs: 10,
            }],
            windows: vec![WindowStats {
                name: "serve.job_latency_ns.60s".into(),
                window_ns: 60_000_000_000,
                hist: telemetry::HistogramSnapshot {
                    count: 4,
                    sum: 4_000_000,
                    buckets: vec![(524_288, 1_048_576, 4)],
                },
            }],
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            flight: Vec::new(),
        };
        let s = render_top(&snap, 2, 5);
        assert!(s.contains("scrape 2/5"), "{s}");
        assert!(s.contains("3 queued (1 high priority)"), "{s}");
        assert!(s.contains("hit rate 90.0%"), "{s}");
        assert!(s.contains("latency 60s: p50"), "{s}");
        assert!(
            s.contains("[##########----------]  50.0%  (10 jobs)"),
            "{s}"
        );
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(1.5), "1.50 s");
        assert_eq!(fmt_time(2e-3), "2.00 ms");
        assert_eq!(fmt_time(3e-6), "3.00 \u{b5}s");
        assert_eq!(fmt_time(5e-9), "5 ns");
    }
}
