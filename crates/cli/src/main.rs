//! `jigsaw` — command-line front end for the Slice-and-Dice NuFFT library
//! and the JIGSAW accelerator simulator.
//!
//! ```text
//! jigsaw recon     --n 192 --spokes 302 [--engine slice-dice] [--cg 15] [--out out/recon.pgm]
//! jigsaw simulate  --grid 512 --samples 100000 [--cycle-accurate]
//! jigsaw simulate3d --grid 32 --samples 20000 [--sorted]
//! jigsaw gridbench --n 256 --m 100000
//! jigsaw serve     --socket /tmp/jigsaw.sock [--cache-capacity 8] [--jobs 2]
//!                  [--snapshot /var/lib/jigsaw/cache.snap] [--snapshot-every-secs 30]
//! jigsaw request   --socket /tmp/jigsaw.sock --n 64 [--count 8] [--high] [--timeout-ms 120000]
//! jigsaw request   --socket /tmp/jigsaw.sock --stats [--format table|json|prom]
//! jigsaw request   --socket /tmp/jigsaw.sock --drain
//! jigsaw top       --socket /tmp/jigsaw.sock [--interval-ms 1000] [--iterations 0]
//! jigsaw profile   --n 256 --coils 8 --trace-out out/trace.json [--metrics]
//! jigsaw info
//! ```

mod args;
mod commands;
mod error;

use error::CliError;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    let opts = match args::Options::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            let e = CliError::Config(e);
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            return ExitCode::from(e.exit_code());
        }
    };
    let result = match cmd.as_str() {
        "recon" => commands::recon(&opts),
        "simulate" => commands::simulate(&opts),
        "simulate3d" => commands::simulate3d(&opts),
        "gridbench" => commands::gridbench(&opts),
        "profile" => commands::profile(&opts),
        "serve" => commands::serve(&opts),
        "request" => commands::request(&opts),
        "top" => commands::top(&opts),
        "gpustats" => commands::gpustats(&opts),
        "emit-rtl" => commands::emit_rtl(&opts),
        "info" => commands::info(),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // One line, one category-specific exit code (see error.rs).
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
