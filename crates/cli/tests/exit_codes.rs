//! Black-box exit-code contract of the `jigsaw` binary.
//!
//! The CLI promises stable, category-specific exit codes (see
//! `src/error.rs`): 0 success, 1 usage, 2 configuration, 3 data,
//! 4 execution, 5 budget — each with a one-line `error:` diagnostic on
//! stderr. Scripts and CI branch on these, so they are pinned here by
//! running the real binary.

use std::process::{Command, Output};

fn jigsaw(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_jigsaw"))
        .args(args)
        .env_remove("JIGSAW_FAULTS")
        .output()
        .expect("failed to spawn jigsaw binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn success_is_zero() {
    let out = jigsaw(&["info"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
}

#[test]
fn unknown_command_is_one() {
    let out = jigsaw(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn config_error_is_two() {
    // An unknown gridding engine is a configuration problem.
    let out = jigsaw(&["recon", "--n", "16", "--engine", "nonesuch"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    let line = err.lines().next().unwrap_or("");
    assert!(
        line.starts_with("error: configuration error:"),
        "first stderr line: {line}"
    );

    // So is a non-numeric flag value.
    let out = jigsaw(&["recon", "--n", "banana"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
}

#[test]
fn data_error_is_three() {
    // An unwritable output path is a data problem.
    let out = jigsaw(&[
        "recon",
        "--n",
        "16",
        "--spokes",
        "4",
        "--out",
        "/proc/definitely/not/writable/recon.pgm",
    ]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.lines().any(|l| l.starts_with("error: data error:")),
        "stderr: {err}"
    );
}

#[test]
fn execution_error_is_four() {
    // Inject a fault into the per-coil batch jobs with the serial
    // fallback disabled: the contained panic must surface as an
    // execution error, not a crash (exit 101/134) or a hang.
    let out = Command::new(env!("CARGO_BIN_EXE_jigsaw"))
        .args(["recon", "--n", "16", "--spokes", "4", "--coils", "2"])
        .env("JIGSAW_FAULTS", "site=nufft.coil,seed=7,rate=1,fires=1")
        .env("JIGSAW_FALLBACK", "0")
        .output()
        .expect("failed to spawn jigsaw binary");
    assert_eq!(out.status.code(), Some(4), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.lines()
            .any(|l| l.starts_with("error: execution error:")),
        "stderr: {err}"
    );
    assert!(err.contains("nufft.coil"), "stderr: {err}");
}

#[test]
fn budget_error_is_five() {
    // A 1 ms budget exhausts during acquisition/setup, before the first
    // CG iteration completes — no usable iterate exists, so this is a
    // hard budget error rather than a degraded result.
    let out = jigsaw(&["recon", "--n", "64", "--cg", "8", "--time-budget-ms", "1"]);
    assert_eq!(out.status.code(), Some(5), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(
        err.lines()
            .any(|l| l.starts_with("error: budget exhausted:")),
        "stderr: {err}"
    );
}

#[test]
fn fault_with_fallback_degrades_to_success() {
    // Same injected fault as `execution_error_is_four`, but with the
    // default fallback policy: the run must succeed (exit 0) and count
    // the degradation in the metrics table.
    let out = Command::new(env!("CARGO_BIN_EXE_jigsaw"))
        .args([
            "recon",
            "--n",
            "16",
            "--spokes",
            "4",
            "--coils",
            "2",
            "--metrics",
        ])
        .env("JIGSAW_FAULTS", "site=nufft.coil,seed=7,rate=1,fires=1")
        .env("JIGSAW_TELEMETRY", "1")
        .env_remove("JIGSAW_FALLBACK")
        .output()
        .expect("failed to spawn jigsaw binary");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let row = stdout
        .lines()
        .find(|l| l.contains("engine.fallbacks"))
        .unwrap_or_else(|| panic!("no engine.fallbacks row in metrics:\n{stdout}"));
    let value: u64 = row
        .split_whitespace()
        .find_map(|tok| tok.parse().ok())
        .unwrap_or_else(|| panic!("no numeric value in row: {row}"));
    assert!(value > 0, "engine.fallbacks must be nonzero: {row}");
}
