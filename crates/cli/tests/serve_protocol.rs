//! Black-box protocol contract of the `jigsaw serve` daemon.
//!
//! These tests spawn the *real* binary (mirroring `exit_codes.rs`) and
//! drive the wire protocol end to end over a Unix socket and over
//! stdin/stdout framing: submit/response round trips, malformed-frame
//! handling, fault-injected job panics, and clean shutdown with exit 0.

use jigsaw_core::gridding::SerialGridder;
use jigsaw_core::serve::{ErrorCategory, Frame, JobRequest, Priority, ProtocolError, ServeClient};
use jigsaw_core::{traj, NufftConfig, NufftPlan};
use jigsaw_num::C64;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A daemon child that is killed on drop so a failing test can't leak
/// processes or wedge the suite.
struct DaemonGuard {
    child: Child,
    socket: PathBuf,
}

impl DaemonGuard {
    fn spawn(name: &str, extra_env: &[(&str, &str)]) -> Self {
        Self::spawn_with_args(name, &[], extra_env)
    }

    fn spawn_with_args(
        name: &str,
        extra_args: &[&std::ffi::OsStr],
        extra_env: &[(&str, &str)],
    ) -> Self {
        let socket = std::env::temp_dir().join(format!(
            "jigsaw-serve-test-{name}-{}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&socket);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_jigsaw"));
        cmd.args(["serve", "--socket"])
            .arg(&socket)
            .args(extra_args)
            .env_remove("JIGSAW_FAULTS")
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (k, v) in extra_env {
            cmd.env(k, v);
        }
        let child = cmd.spawn().expect("failed to spawn jigsaw serve");
        let mut guard = Self {
            child,
            socket: socket.clone(),
        };
        // Wait for the daemon to bind its socket.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !guard.socket.exists() {
            assert!(
                Instant::now() < deadline,
                "daemon never created {}",
                guard.socket.display()
            );
            if let Ok(Some(status)) = guard.child.try_wait() {
                panic!("daemon exited early with {status}");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        guard
    }

    fn connect(&self) -> ServeClient<std::os::unix::net::UnixStream> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match ServeClient::connect(&self.socket) {
                Ok(c) => {
                    c.set_read_timeout(Duration::from_secs(60))
                        .expect("timeout");
                    return c;
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "cannot connect: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// Wait for exit and return the status code.
    fn wait(mut self) -> Option<i32> {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(Some(status)) = self.child.try_wait() {
                return status.code();
            }
            assert!(Instant::now() < deadline, "daemon did not exit");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn radial_request(tag: u64, n: u32) -> JobRequest {
    let mut coords = traj::radial_2d(8, 2 * n as usize, true);
    traj::shuffle(&mut coords, 7);
    let values: Vec<C64> = coords
        .iter()
        .map(|c| C64::new(c[0].cos(), c[1].sin()))
        .collect();
    JobRequest {
        tag,
        priority: Priority::Normal,
        n,
        budget_ms: 0,
        coords,
        values,
    }
}

#[test]
fn submit_result_framing_and_clean_shutdown() {
    let daemon = DaemonGuard::spawn("roundtrip", &[]);
    let mut client = daemon.connect();
    client.ping().expect("ping");

    let req = radial_request(7, 24);
    // Black-box numeric contract: the daemon's answer is bitwise equal
    // to an in-process cold serial reconstruction.
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(24)).expect("plan");
    let expected = plan
        .adjoint(&req.coords, &req.values, &SerialGridder)
        .expect("reference adjoint");

    match client.roundtrip(&req).expect("roundtrip") {
        Frame::Result(res) => {
            assert_eq!(res.tag, 7);
            assert_eq!(res.n, 24);
            assert!(!res.cache_hit, "first job must be a cold plan");
            assert_eq!(res.image.len(), expected.image.len());
            for (a, b) in res.image.iter().zip(&expected.image) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
        other => panic!("expected result frame, got {other:?}"),
    }

    // Same trajectory again: must be a cache hit with identical bytes.
    match client.roundtrip(&radial_request(8, 24)).expect("roundtrip") {
        Frame::Result(res) => {
            assert_eq!(res.tag, 8);
            assert!(res.cache_hit, "second identical job must hit the cache");
            for (a, b) in res.image.iter().zip(&expected.image) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
            }
        }
        other => panic!("expected result frame, got {other:?}"),
    }

    client.shutdown().expect("shutdown ack");
    assert_eq!(daemon.wait(), Some(0), "clean shutdown must exit 0");
}

#[test]
fn malformed_frame_gets_error_frame_and_daemon_survives() {
    let daemon = DaemonGuard::spawn("malformed", &[]);

    // Write garbage straight to the socket.
    let mut raw = std::os::unix::net::UnixStream::connect(&daemon.socket).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    raw.write_all(b"GARBAGE-NOT-A-FRAME.............")
        .expect("write garbage");
    let mut client = ServeClient::new(&mut raw);
    match client.recv().expect("error frame") {
        Frame::Error(e) => {
            assert_eq!(e.category, ErrorCategory::Protocol);
            assert_eq!(e.tag, 0);
        }
        other => panic!("expected protocol error frame, got {other:?}"),
    }
    // The daemon closes the poisoned connection...
    let mut rest = Vec::new();
    let n = raw.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection must be closed after a malformed frame");

    // ...but keeps serving fresh connections.
    let mut client = daemon.connect();
    client
        .ping()
        .expect("daemon must survive a malformed frame");
    match client.roundtrip(&radial_request(1, 16)).expect("roundtrip") {
        Frame::Result(res) => assert_eq!(res.tag, 1),
        other => panic!("expected result frame, got {other:?}"),
    }
    client.shutdown().expect("shutdown ack");
    assert_eq!(daemon.wait(), Some(0));
}

#[test]
fn semantic_errors_keep_the_connection_open() {
    let daemon = DaemonGuard::spawn("semantic", &[]);
    let mut client = daemon.connect();

    // Non-finite coordinate: a tagged data-category error frame.
    let mut bad = radial_request(31, 16);
    bad.coords[0][0] = f64::INFINITY;
    match client.roundtrip(&bad).expect("roundtrip") {
        Frame::Error(e) => {
            assert_eq!(e.tag, 31);
            assert_eq!(e.category, ErrorCategory::Data);
        }
        other => panic!("expected error frame, got {other:?}"),
    }

    // Zero-millisecond budget: refused with a budget error frame.
    let mut starved = radial_request(32, 16);
    starved.budget_ms = 1;
    std::thread::sleep(Duration::from_millis(5));
    // (budget starts at submit; job of this size cannot finish in 1 ms
    // when an artificial queue wait is imposed by the sleep above —
    // accept either outcome but require the tag to round-trip)
    match client.roundtrip(&starved).expect("roundtrip") {
        Frame::Error(e) => assert_eq!(e.tag, 32),
        Frame::Result(r) => assert_eq!(r.tag, 32),
        other => panic!("unexpected frame {other:?}"),
    }

    // Same connection still works.
    match client
        .roundtrip(&radial_request(33, 16))
        .expect("roundtrip")
    {
        Frame::Result(res) => assert_eq!(res.tag, 33),
        other => panic!("expected result frame, got {other:?}"),
    }
    client.shutdown().expect("shutdown ack");
    assert_eq!(daemon.wait(), Some(0));
}

#[test]
fn injected_job_fault_returns_error_frame_and_daemon_survives() {
    // Arm exactly one serve.job fire via the environment, as a real
    // chaos run would: the first job comes back as a structured
    // execution-error frame, the second succeeds, the daemon exits 0.
    let daemon = DaemonGuard::spawn(
        "faulted",
        &[("JIGSAW_FAULTS", "site=serve.job,seed=7,rate=1,fires=1")],
    );
    let mut client = daemon.connect();

    match client
        .roundtrip(&radial_request(51, 16))
        .expect("roundtrip")
    {
        Frame::Error(e) => {
            assert_eq!(e.tag, 51);
            assert_eq!(e.category, ErrorCategory::Execution);
            assert!(e.message.contains("serve.job"), "{}", e.message);
        }
        other => panic!("expected execution error frame, got {other:?}"),
    }

    match client
        .roundtrip(&radial_request(52, 16))
        .expect("roundtrip")
    {
        Frame::Result(res) => assert_eq!(res.tag, 52),
        other => panic!("daemon must survive the fault, got {other:?}"),
    }
    client.shutdown().expect("shutdown ack");
    assert_eq!(daemon.wait(), Some(0));
}

#[test]
fn concurrent_clients_each_get_their_own_tagged_results() {
    let daemon = DaemonGuard::spawn("concurrent", &[]);
    let mut handles = Vec::new();
    for c in 0..4u64 {
        let socket = daemon.socket.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(&socket).expect("connect");
            client.set_read_timeout(Duration::from_secs(60)).unwrap();
            for j in 0..3u64 {
                let tag = 100 * c + j;
                let mut req = radial_request(tag, 16);
                req.priority = if c == 0 {
                    Priority::High
                } else {
                    Priority::Normal
                };
                match client.roundtrip(&req).expect("roundtrip") {
                    Frame::Result(res) => {
                        assert_eq!(res.tag, tag, "responses must stay per-connection");
                        assert_eq!(res.image.len(), 256);
                    }
                    other => panic!("expected result frame, got {other:?}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    let mut client = daemon.connect();
    client.shutdown().expect("shutdown ack");
    assert_eq!(daemon.wait(), Some(0));
}

#[test]
fn drain_then_restart_serves_first_request_from_warm_cache() {
    use jigsaw_core::serve::ShedReason;
    let snap = std::env::temp_dir().join(format!(
        "jigsaw-serve-test-restart-{}.snap",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&snap);
    let args: &[&std::ffi::OsStr] = &["--snapshot".as_ref(), snap.as_os_str()];

    // Lifetime 1: warm the plan cache, then drain under load — a
    // pipelined burst with the Drain frame in the middle, so the
    // daemon must answer every accepted job exactly once, refuse the
    // late submit with Overloaded{draining}, snapshot, and exit 0.
    let daemon = DaemonGuard::spawn_with_args("restart-a", args, &[]);
    let mut client = daemon.connect();
    for tag in 1..=2u64 {
        client.submit(&radial_request(tag, 24)).expect("submit");
    }
    client.send(&Frame::Drain).expect("drain");
    client.submit(&radial_request(9, 24)).expect("late submit");
    let mut results = Vec::new();
    let mut acked = false;
    let mut late_shed = None;
    for _ in 0..4 {
        match client.recv().expect("drain-session reply") {
            Frame::Pong => acked = true,
            Frame::Result(r) => results.push(r.tag),
            Frame::Overloaded(o) => late_shed = Some(o),
            other => panic!("unexpected frame during drain: {other:?}"),
        }
    }
    assert!(acked, "drain must be acked with Pong");
    results.sort_unstable();
    assert_eq!(results, vec![1, 2], "every accepted job exactly one reply");
    let shed = late_shed.expect("late submit must be refused");
    assert_eq!(shed.tag, 9);
    assert_eq!(shed.reason, ShedReason::Draining);
    assert_eq!(daemon.wait(), Some(0), "graceful drain must exit 0");
    assert!(snap.exists(), "drain must persist the snapshot");

    // Lifetime 2: a fresh daemon process restores the snapshot; the
    // very first identical request over the real wire is a cache hit.
    let daemon = DaemonGuard::spawn_with_args("restart-b", args, &[]);
    let mut client = daemon.connect();
    match client
        .roundtrip(&radial_request(10, 24))
        .expect("roundtrip")
    {
        Frame::Result(res) => {
            assert_eq!(res.tag, 10);
            assert!(
                res.cache_hit,
                "first post-restart request must hit the restored cache"
            );
        }
        other => panic!("expected result frame, got {other:?}"),
    }
    client.drain().expect("drain ack");
    assert_eq!(daemon.wait(), Some(0));
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn sigterm_drains_gracefully_and_snapshots() {
    let snap = std::env::temp_dir().join(format!(
        "jigsaw-serve-test-sigterm-{}.snap",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&snap);
    let args: &[&std::ffi::OsStr] = &["--snapshot".as_ref(), snap.as_os_str()];
    let daemon = DaemonGuard::spawn_with_args("sigterm", args, &[]);
    let mut client = daemon.connect();
    match client
        .roundtrip(&radial_request(41, 16))
        .expect("roundtrip")
    {
        Frame::Result(res) => assert_eq!(res.tag, 41),
        other => panic!("expected result frame, got {other:?}"),
    }
    // `kill <pid>`: supervised rotation, not data loss — the daemon
    // must drain, snapshot its warm cache, and exit 0.
    let status = Command::new("kill")
        .arg(daemon.child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    assert_eq!(daemon.wait(), Some(0), "SIGTERM must exit 0, not crash");
    assert!(snap.exists(), "SIGTERM drain must persist the snapshot");
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn corrupted_snapshot_degrades_to_cold_start_and_clean_exit() {
    let snap = std::env::temp_dir().join(format!(
        "jigsaw-serve-test-corrupt-{}.snap",
        std::process::id()
    ));
    std::fs::write(&snap, b"JGSPtorn-mid-write-garbage-bytes").expect("plant corrupt snapshot");
    let args: &[&std::ffi::OsStr] = &["--snapshot".as_ref(), snap.as_os_str()];
    let daemon = DaemonGuard::spawn_with_args("corrupt-snap", args, &[]);
    let mut client = daemon.connect();
    match client
        .roundtrip(&radial_request(21, 16))
        .expect("roundtrip")
    {
        Frame::Result(res) => {
            assert_eq!(res.tag, 21);
            assert!(!res.cache_hit, "corrupt snapshot must mean a cold start");
        }
        other => panic!("expected result frame, got {other:?}"),
    }
    client.shutdown().expect("shutdown ack");
    assert_eq!(
        daemon.wait(),
        Some(0),
        "a corrupt snapshot must never wedge or crash the daemon"
    );
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn request_timeout_flag_bounds_a_stalled_daemon() {
    // A fake daemon that accepts and then never replies: the client's
    // --timeout-ms receive deadline must turn the stall into a prompt
    // error instead of hanging the request forever.
    let socket = std::env::temp_dir().join(format!(
        "jigsaw-serve-test-stall-{}.sock",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&socket);
    let listener = std::os::unix::net::UnixListener::bind(&socket).expect("bind stall socket");
    let stall = std::thread::spawn(move || {
        // Hold the connection open, read and discard, never write.
        if let Ok((mut conn, _)) = listener.accept() {
            let mut sink = [0u8; 4096];
            while let Ok(n) = conn.read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
        }
    });
    let t0 = Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_jigsaw"))
        .args(["request", "--socket"])
        .arg(&socket)
        .args(["--timeout-ms", "300", "--ping"])
        .output()
        .expect("run jigsaw request");
    assert!(
        !out.status.success(),
        "a stalled daemon must be an error, got {out:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "--timeout-ms must bound the stall, took {:?}",
        t0.elapsed()
    );
    // A zero deadline is a configuration error (exit 2), not a hang.
    let out = Command::new(env!("CARGO_BIN_EXE_jigsaw"))
        .args(["request", "--socket"])
        .arg(&socket)
        .args(["--timeout-ms", "0", "--ping"])
        .output()
        .expect("run jigsaw request");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    drop(stall); // detached on purpose: the listener thread exits when the socket closes
    let _ = std::fs::remove_file(&socket);
}

#[test]
fn stdio_framing_round_trips_and_exits_zero() {
    // The socket-free fallback: frames on stdin/stdout.
    let mut child = Command::new(env!("CARGO_BIN_EXE_jigsaw"))
        .args(["serve", "--stdio"])
        .env_remove("JIGSAW_FAULTS")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn jigsaw serve --stdio");

    let req = radial_request(61, 16);
    {
        let stdin = child.stdin.as_mut().expect("stdin");
        stdin
            .write_all(&jigsaw_core::serve::protocol::encode(&Frame::Ping))
            .unwrap();
        stdin
            .write_all(&jigsaw_core::serve::protocol::encode(&Frame::Submit(
                req.clone(),
            )))
            .unwrap();
        stdin
            .write_all(&jigsaw_core::serve::protocol::encode(&Frame::Shutdown))
            .unwrap();
        stdin.flush().unwrap();
    }
    let out = child.wait_with_output().expect("wait");
    assert_eq!(out.status.code(), Some(0), "stdio shutdown must exit 0");

    let mut r = std::io::Cursor::new(out.stdout);
    let mut frames = Vec::new();
    loop {
        match jigsaw_core::serve::protocol::read_frame(&mut r) {
            Ok(f) => frames.push(f),
            Err(ProtocolError::Eof) => break,
            Err(e) => panic!("bad frame on stdout: {e}"),
        }
    }
    assert!(frames.contains(&Frame::Pong), "{frames:?}");
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, Frame::Result(res) if res.tag == 61 && res.image.len() == 256)),
        "no result frame for the submitted job: {frames:?}"
    );
}
