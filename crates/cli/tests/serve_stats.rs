//! Black-box introspection contract of `jigsaw serve`: stats scrapes
//! during a live burst, format surfaces, and request-id tracing.
//!
//! Mirrors `serve_protocol.rs`: the *real* binary is spawned and driven
//! over a Unix socket. The assertions pin the observability guarantees:
//! counters are monotone across scrapes, the wire-reported cache hit
//! rate is consistent with the jobs actually submitted, scraping never
//! perturbs reconstruction bytes, and a `--trace-out` trace carries the
//! request id on job spans.

use jigsaw_core::serve::{Frame, JobRequest, Priority, ServeClient, STATS_VERSION};
use jigsaw_core::traj;
use jigsaw_num::C64;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A daemon child killed on drop so a failing test can't leak processes.
struct DaemonGuard {
    child: Child,
    socket: PathBuf,
}

impl DaemonGuard {
    fn spawn(name: &str, extra_args: &[&str]) -> Self {
        let socket = std::env::temp_dir().join(format!(
            "jigsaw-stats-test-{name}-{}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&socket);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_jigsaw"));
        cmd.args(["serve", "--socket"])
            .arg(&socket)
            .args(extra_args)
            .env_remove("JIGSAW_FAULTS")
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        let child = cmd.spawn().expect("failed to spawn jigsaw serve");
        let guard = Self {
            child,
            socket: socket.clone(),
        };
        let deadline = Instant::now() + Duration::from_secs(30);
        while !guard.socket.exists() {
            assert!(
                Instant::now() < deadline,
                "daemon never created {}",
                guard.socket.display()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        guard
    }

    fn connect(&self) -> ServeClient<std::os::unix::net::UnixStream> {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match ServeClient::connect(&self.socket) {
                Ok(c) => {
                    c.set_read_timeout(Duration::from_secs(60))
                        .expect("timeout");
                    return c;
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "cannot connect: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    fn wait(mut self) -> Option<i32> {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(Some(status)) = self.child.try_wait() {
                return status.code();
            }
            assert!(Instant::now() < deadline, "daemon did not exit");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn radial_request(tag: u64, n: u32, seed: u64) -> JobRequest {
    let mut coords = traj::radial_2d(8, 2 * n as usize, true);
    traj::shuffle(&mut coords, seed);
    let values: Vec<C64> = coords
        .iter()
        .map(|c| C64::new(c[0].cos(), c[1].sin()))
        .collect();
    JobRequest {
        tag,
        priority: Priority::Normal,
        n,
        budget_ms: 0,
        coords,
        values,
    }
}

fn image_of(frame: Frame) -> Vec<C64> {
    match frame {
        Frame::Result(res) => res.image,
        other => panic!("expected result frame, got {other:?}"),
    }
}

#[test]
fn stats_scrapes_are_monotone_and_hit_rate_matches_submissions() {
    let daemon = DaemonGuard::spawn("burst", &[]);
    let mut jobs = daemon.connect();
    let mut scraper = daemon.connect();

    // One cold job, then three replays of the same trajectory: exactly
    // 1 miss and 3 hits if the wire-reported counters are truthful.
    let cold = image_of(jobs.roundtrip(&radial_request(1, 16, 7)).expect("cold"));
    for tag in 2..=4u64 {
        let hit = image_of(jobs.roundtrip(&radial_request(tag, 16, 7)).expect("hit"));
        assert_eq!(cold, hit, "cache hits must be bitwise identical");
    }

    let s1 = scraper.stats().expect("first scrape");
    assert_eq!(s1.stats_version, STATS_VERSION);
    assert_eq!(s1.cache.misses, 1, "one cold plan");
    assert_eq!(s1.cache.hits, 3, "three replays");
    assert!((s1.cache.hit_rate() - 0.75).abs() < 1e-12);
    assert_eq!(s1.cache.len, 1);
    assert_eq!(s1.counter("serve.jobs"), Some(4));
    assert!(s1.uptime_ns > 0);
    assert!(!s1.workers.is_empty(), "worker pool counters must appear");
    assert!(
        s1.window("serve.job_latency_ns.60s")
            .is_some_and(|w| w.hist.count == 4),
        "windowed latency must cover all four jobs: {:?}",
        s1.windows
    );
    assert!(
        s1.flight.iter().any(|e| e.request_id == 1),
        "flight recorder must name request 1: {:?}",
        s1.flight
    );

    // Burst while scraping: stats answers must stay consistent and the
    // counters monotone, and scraping must not perturb job results.
    let socket = daemon.socket.clone();
    let burst = std::thread::spawn(move || {
        let mut c = ServeClient::connect(&socket).expect("connect");
        c.set_read_timeout(Duration::from_secs(60)).unwrap();
        for tag in 10..26u64 {
            let img = image_of(c.roundtrip(&radial_request(tag, 16, 7)).expect("burst job"));
            assert!(!img.is_empty());
        }
        c
    });
    let mut prev = s1.clone();
    while !burst.is_finished() {
        let s = scraper.stats().expect("mid-burst scrape");
        assert!(s.uptime_ns >= prev.uptime_ns, "uptime must be monotone");
        assert!(s.cache.hits >= prev.cache.hits, "hits must be monotone");
        assert!(
            s.cache.misses >= prev.cache.misses,
            "misses must be monotone"
        );
        assert!(
            s.counter("serve.jobs").unwrap_or(0) >= prev.counter("serve.jobs").unwrap_or(0),
            "job counter must be monotone"
        );
        prev = s;
    }
    let mut jobs2 = burst.join().expect("burst thread");

    let s2 = scraper.stats().expect("final scrape");
    assert_eq!(s2.cache.misses, 1, "burst replays the cached trajectory");
    assert_eq!(s2.cache.hits, 3 + 16);
    assert_eq!(s2.counter("serve.jobs"), Some(20));

    // Scraping active never perturbs reconstruction bytes.
    let post = image_of(jobs2.roundtrip(&radial_request(99, 16, 7)).expect("post"));
    assert_eq!(cold, post);

    jobs.shutdown().expect("shutdown ack");
    assert_eq!(daemon.wait(), Some(0));
}

#[test]
fn request_stats_cli_formats() {
    let daemon = DaemonGuard::spawn("cli", &[]);
    let mut client = daemon.connect();
    let _ = image_of(client.roundtrip(&radial_request(1, 16, 3)).expect("job"));
    let _ = image_of(client.roundtrip(&radial_request(2, 16, 3)).expect("job"));

    let run = |fmt: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_jigsaw"))
            .args(["request", "--socket"])
            .arg(&daemon.socket)
            .args(["--stats", "--format", fmt])
            .output()
            .expect("run jigsaw request --stats");
        assert!(
            out.status.success(),
            "--format {fmt} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8 stdout")
    };

    let prom = run("prom");
    assert!(prom.contains("serve_cache_hit"), "{prom}");
    assert!(prom.contains("serve_job_latency_ns_bucket"), "{prom}");
    assert!(prom.contains("# TYPE"), "{prom}");

    let json = run("json");
    let doc = jigsaw_telemetry::json::parse(&json).expect("stats JSON parses");
    assert_eq!(
        doc.get("stats_version").and_then(|v| v.as_f64()),
        Some(f64::from(STATS_VERSION))
    );
    let cache = doc.get("cache").expect("cache object");
    assert_eq!(cache.get("hits").and_then(|v| v.as_f64()), Some(1.0));

    let table = run("table");
    assert!(table.contains("hit rate"), "{table}");

    client.shutdown().expect("shutdown ack");
    assert_eq!(daemon.wait(), Some(0));
}

#[test]
fn contained_panic_dumps_flight_tail_naming_request_id() {
    // Arm one serve.job fault. The daemon must survive, the client gets
    // a structured error, and stderr carries a flight-recorder dump
    // that names the request that died.
    let socket = std::env::temp_dir().join(format!(
        "jigsaw-stats-test-panic-{}.sock",
        std::process::id()
    ));
    let stderr_path =
        std::env::temp_dir().join(format!("jigsaw-stats-panic-{}.stderr", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let stderr_file = std::fs::File::create(&stderr_path).expect("stderr capture file");
    let mut child = Command::new(env!("CARGO_BIN_EXE_jigsaw"))
        .args(["serve", "--socket"])
        .arg(&socket)
        .env("JIGSAW_FAULTS", "site=serve.job,seed=7,rate=1,fires=1")
        .stdout(Stdio::null())
        .stderr(Stdio::from(stderr_file))
        .spawn()
        .expect("spawn jigsaw serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon never created socket");
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut client = ServeClient::connect(&socket).expect("connect");
    client
        .set_read_timeout(Duration::from_secs(60))
        .expect("timeout");
    match client.roundtrip(&radial_request(4242, 16, 9)).expect("rt") {
        Frame::Error(e) => assert_eq!(e.tag, 4242),
        other => panic!("expected error frame from faulted job, got {other:?}"),
    }
    // The daemon survived: the next job (fault spent) succeeds.
    let _ = image_of(client.roundtrip(&radial_request(4243, 16, 9)).expect("rt"));
    client.shutdown().expect("shutdown ack");
    let status = child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0));

    let text = std::fs::read_to_string(&stderr_path).expect("captured stderr");
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&stderr_path);
    assert!(
        text.contains("contained panic in job request_id=4242"),
        "panic banner must name the request: {text}"
    );
    assert!(
        text.contains("fault_fired") && text.contains("req=4242"),
        "flight dump must carry the fatal request's events: {text}"
    );
}

#[test]
fn trace_out_carries_request_id_on_job_spans() {
    let trace =
        std::env::temp_dir().join(format!("jigsaw-stats-trace-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&trace);
    let daemon = DaemonGuard::spawn("trace", &["--trace-out", trace.to_str().unwrap()]);
    let mut client = daemon.connect();
    let _ = image_of(client.roundtrip(&radial_request(777, 16, 5)).expect("job"));
    client.shutdown().expect("shutdown ack");
    assert_eq!(daemon.wait(), Some(0));

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let _ = std::fs::remove_file(&trace);
    // Every span below the traced job carries the request id as a
    // `req` arg, so the trace can be filtered to one request.
    assert!(text.contains("\"req\": 777"), "no req arg in trace");
    // The whole path must be filterable to the request — including
    // spans emitted on pooled worker threads (engine.job) and inside
    // the FFT layer, which inherit the id through the dispatch seam.
    for span in [
        "serve.job",
        "nufft.adjoint_batch_planned",
        "engine.dispatch",
        "engine.job",
        "fft.process",
    ] {
        let tagged = text
            .lines()
            .any(|l| l.contains(&format!("\"name\": \"{span}\"")) && l.contains("\"req\": 777"));
        assert!(
            tagged,
            "span {span} is missing or not tagged with the request id"
        );
    }
}
