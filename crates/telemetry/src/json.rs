//! A tiny recursive-descent JSON parser used to *validate* the crate's
//! own hand-rolled output (golden-file tests, CI smoke checks). It is a
//! reader, not a writer, and deliberately minimal: full JSON value model,
//! `f64` numbers, `\uXXXX` escapes (including surrogate pairs), no
//! streaming.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON numbers map to `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (key-sorted map).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing whitespace is allowed;
/// trailing garbage is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected '{}' at end of input", b as char)),
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos - 1)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos - 1)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("unpaired surrogate".to_string());
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".to_string());
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or("invalid surrogate pair")?
                        } else {
                            char::from_u32(hi).ok_or("invalid \\u escape")?
                        };
                        s.push(c);
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos - 1))
                }
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences from raw bytes.
                    if c < 0x80 {
                        s.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if c >= 0xF0 {
                            4
                        } else if c >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let end = start + len;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or("truncated UTF-8 sequence")?;
                        let text =
                            std::str::from_utf8(chunk).map_err(|e| format!("bad UTF-8: {e}"))?;
                        s.push_str(text);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or("truncated \\u escape")?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit at byte {}", self.pos - 1))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, 2, {"b": null}], "c": {"d": true}}"#).unwrap();
        let arr = doc.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
        assert_eq!(
            doc.get("c").and_then(|c| c.get("d")),
            Some(&Value::Bool(true))
        );
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            Value::Str("a\"b\\c\ndA".into())
        );
        // \uXXXX escapes, including a surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(
            parse("\"\\u0041\\ud834\\udd1e\"").unwrap(),
            Value::Str("A\u{1D11E}".into())
        );
        assert!(
            parse("\"\\ud834x\"").is_err(),
            "unpaired surrogate rejected"
        );
        // Raw multibyte UTF-8 passes through.
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(parse("[ ]").unwrap(), Value::Arr(vec![]));
    }
}
