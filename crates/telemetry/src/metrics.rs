//! Named metrics: atomic counters, gauges, and fixed-bucket log2
//! histograms, collected in a [`Registry`] with a deterministic
//! [`Registry::snapshot`].
//!
//! Handles (`Arc<Counter>` etc.) are cheap to cache at an instrumentation
//! site; [`Registry::reset`] zeroes values *in place* so cached handles
//! stay wired to the registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 histogram buckets: bucket 0 holds the value `0`, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`; bucket 64 tops out at
/// `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64` (stored as bits in an atomic).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Add to the gauge (compare-exchange loop on the bit pattern).
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn zero(&self) {
        self.set(0.0);
    }
}

/// A fixed-bucket log2 histogram of `u64` samples (typically nanoseconds).
///
/// Recording is two relaxed atomic adds plus a `leading_zeros` — cheap
/// enough for per-job (not per-sample) hot paths.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index for `value`: 0 for 0, else `floor(log2 v) + 1`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Inclusive-exclusive bounds `[lo, hi)` of bucket `i` (bucket 64's
    /// upper bound saturates at `u64::MAX`).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HIST_BUCKETS, "bucket index {i} out of range");
        if i == 0 {
            (0, 1)
        } else {
            let lo = 1u64 << (i - 1);
            let hi = if i >= 64 { u64::MAX } else { 1u64 << i };
            (lo, hi)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Freeze this histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64, u64)> = (0..HIST_BUCKETS)
            .filter_map(|i| {
                let c = self.buckets[i].load(Ordering::Relaxed);
                if c == 0 {
                    None
                } else {
                    let (lo, hi) = Self::bucket_bounds(i);
                    Some((lo, hi, c))
                }
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A frozen view of one [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Non-empty buckets as `(lo, hi, count)` with `lo ≤ v < hi`.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q ∈ [0, 1]` (a
    /// conservative percentile estimate: the true quantile is below it).
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(_, hi, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return hi;
            }
        }
        self.buckets.last().map(|b| b.1).unwrap_or(0)
    }

    /// Quantile estimate with within-bucket linear interpolation: the
    /// sample at fractional rank `q·count` is assumed uniformly placed
    /// inside its bucket `[lo, hi)`. Tighter than
    /// [`quantile_upper_bound`](Self::quantile_upper_bound) — log2
    /// buckets overstate the upper bound by up to 2× — while still
    /// bracketed by the true bucket: `lo ≤ estimate ≤ hi`.
    pub fn quantile_estimate(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for &(lo, hi, c) in &self.buckets {
            let before = seen;
            seen += c;
            if seen as f64 >= target {
                let frac = (target - before as f64) / c as f64;
                return lo as f64 + frac * (hi - lo) as f64;
            }
        }
        self.buckets.last().map(|b| b.1 as f64).unwrap_or(0.0)
    }
}

/// A named collection of counters, gauges, and histograms.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`. Cache the handle at hot sites.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Deterministic (name-sorted) snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zero every metric **in place** — existing handles keep working.
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.zero();
        }
        for g in self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            g.zero();
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            h.zero();
        }
    }
}

/// A frozen, serializable view of a [`Registry`], name-sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of a named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a named gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Summary of a named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Human-readable aligned table.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let wid = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(4)
            .max(4);
        if !self.counters.is_empty() {
            s.push_str("counters:\n");
            for (n, v) in &self.counters {
                s.push_str(&format!("  {n:wid$}  {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            s.push_str("gauges:\n");
            for (n, v) in &self.gauges {
                s.push_str(&format!("  {n:wid$}  {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            s.push_str("histograms:\n");
            for (n, h) in &self.histograms {
                s.push_str(&format!(
                    "  {n:wid$}  count {}  mean {:.1}  p50≤{}  p99≤{}\n",
                    h.count,
                    h.mean(),
                    h.quantile_upper_bound(0.5),
                    h.quantile_upper_bound(0.99),
                ));
            }
        }
        if s.is_empty() {
            s.push_str("(no metrics recorded)\n");
        }
        s
    }

    /// Single-object JSON document.
    pub fn to_json(&self) -> String {
        use crate::export::escape_json;
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {v}", escape_json(n)));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {}", escape_json(n), fmt_f64(*v)));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                escape_json(n),
                h.count,
                h.sum
            ));
            for (j, (lo, hi, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("[{lo}, {hi}, {c}]"));
            }
            s.push_str("]}");
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Bounds are consistent with the index mapping at every edge.
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lo edge of bucket {i}");
            if i < 64 {
                assert_eq!(Histogram::bucket_index(hi - 1), i, "hi edge of bucket {i}");
                assert_eq!(
                    Histogram::bucket_index(hi),
                    i + 1,
                    "first of bucket {}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 3, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1029);
        assert_eq!(
            s.buckets,
            vec![(0, 1, 1), (1, 2, 2), (2, 4, 1), (1024, 2048, 1)]
        );
        assert!((s.mean() - 1029.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.quantile_upper_bound(0.5), 2); // 3rd of 5 samples lands in [1,2)
        assert_eq!(s.quantile_upper_bound(1.0), 2048);
        assert_eq!(s.quantile_upper_bound(0.0), 1);
    }

    #[test]
    fn quantiles_pinned_on_hand_built_snapshot() {
        // 10 samples: 4 in [4,8), 4 in [8,16), 2 in [16,32).
        let s = HistogramSnapshot {
            count: 10,
            sum: 4 * 5 + 4 * 10 + 2 * 20,
            buckets: vec![(4, 8, 4), (8, 16, 4), (16, 32, 2)],
        };
        // Conservative bound: the bucket's upper edge.
        assert_eq!(s.quantile_upper_bound(0.0), 8);
        assert_eq!(s.quantile_upper_bound(0.4), 8);
        assert_eq!(s.quantile_upper_bound(0.5), 16);
        assert_eq!(s.quantile_upper_bound(0.99), 32);
        assert_eq!(s.quantile_upper_bound(1.0), 32);
        // Linear interpolation: rank q·count placed uniformly in-bucket.
        assert!((s.quantile_estimate(0.0) - 5.0).abs() < 1e-12); // rank 1 of 4 in [4,8)
        assert!((s.quantile_estimate(0.4) - 8.0).abs() < 1e-12); // rank 4 closes [4,8)
        assert!((s.quantile_estimate(0.5) - 10.0).abs() < 1e-12); // rank 5: 1/4 into [8,16)
        assert!((s.quantile_estimate(0.9) - 24.0).abs() < 1e-12); // rank 9: 1/2 into [16,32)
        assert!((s.quantile_estimate(1.0) - 32.0).abs() < 1e-12);
        // The estimate never exceeds the conservative bound.
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert!(s.quantile_estimate(q) <= s.quantile_upper_bound(q) as f64);
        }
        // Empty snapshot degenerates to zero for both.
        let empty = HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![],
        };
        assert_eq!(empty.quantile_upper_bound(0.5), 0);
        assert_eq!(empty.quantile_estimate(0.5), 0.0);
    }

    #[test]
    fn registry_handles_are_shared_and_reset_in_place() {
        let r = Registry::new();
        let c = r.counter("x.count");
        c.add(3);
        r.counter("x.count").add(4);
        assert_eq!(c.get(), 7);
        let g = r.gauge("x.gauge");
        g.set(1.5);
        g.add(1.0);
        assert_eq!(g.get(), 2.5);
        let h = r.histogram("x.hist");
        h.record(9);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        // Cached handle still wired after reset.
        c.inc();
        assert_eq!(r.snapshot().counter("x.count"), Some(1));
    }

    #[test]
    fn snapshot_is_name_sorted_and_queryable() {
        let r = Registry::new();
        r.counter("b").add(2);
        r.counter("a").add(1);
        r.gauge("g").set(0.5);
        r.histogram("h").record(7);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a".to_string(), 1), ("b".to_string(), 2)]);
        assert_eq!(s.gauge("g"), Some(0.5));
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
        let table = s.to_table();
        assert!(table.contains("counters:") && table.contains('a'));
        let json = s.to_json();
        assert!(json.contains("\"a\": 1") && json.contains("\"g\": 0.5"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let s = Registry::new().snapshot();
        assert!(s.to_table().contains("no metrics"));
        assert!(s.to_json().contains("\"counters\""));
    }
}
