//! Spans, events, and the per-thread event buffers.
//!
//! Every thread that emits telemetry owns a buffer (`Arc<Mutex<Vec<Event>>>`)
//! registered in a global table. The emitting thread is the only writer, so
//! its lock is uncontended except during [`drain_events`] — the hot path is
//! effectively lock-free. When a thread exits, its remaining events move to
//! a global retired list so nothing is lost (worker threads of the
//! persistent pool outlive most dispatches; scoped threads do not).

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hard cap on buffered events per thread; beyond it events are dropped
/// (counted in [`dropped_events`]) so long unattended runs stay bounded.
pub const MAX_EVENTS_PER_THREAD: usize = 1 << 18;

/// A structured argument value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

macro_rules! impl_from_arg {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for ArgValue {
            fn from(v: $t) -> Self { ArgValue::$variant(v as $conv) }
        })*
    };
}
impl_from_arg!(
    u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, usize => U64 as u64,
    i64 => I64 as i64, i32 => I64 as i64,
    f64 => F64 as f64, f32 => F64 as f64,
);

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// What an [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed span (chrome `ph: "X"`).
    Span {
        /// Wall-clock duration in nanoseconds.
        dur_ns: u64,
    },
    /// A counter sample (chrome `ph: "C"`) — a named value at an instant,
    /// rendered by Perfetto as a time-series lane.
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One telemetry event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Span/counter name (static — telemetry never allocates for names).
    pub name: &'static str,
    /// Category (prefix of the name before the first `.`).
    pub cat: &'static str,
    /// Telemetry thread id (dense, assigned at first emission per thread).
    pub tid: u64,
    /// Start time, nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// Span nesting depth on the emitting thread (1 = top level).
    pub depth: u16,
    /// Payload.
    pub kind: EventKind,
    /// Structured arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

// ---------------------------------------------------------------------------
// Global thread-buffer registry
// ---------------------------------------------------------------------------

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);

type SharedBuf = Arc<Mutex<Vec<Event>>>;

fn live_bufs() -> &'static Mutex<HashMap<u64, SharedBuf>> {
    static LIVE: OnceLock<Mutex<HashMap<u64, SharedBuf>>> = OnceLock::new();
    LIVE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn retired() -> &'static Mutex<Vec<Event>> {
    static RETIRED: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
    RETIRED.get_or_init(|| Mutex::new(Vec::new()))
}

fn lane_names() -> &'static Mutex<HashMap<u64, String>> {
    static LANES: OnceLock<Mutex<HashMap<u64, String>>> = OnceLock::new();
    LANES.get_or_init(|| Mutex::new(HashMap::new()))
}

struct ThreadBuf {
    tid: u64,
    shared: SharedBuf,
    depth: Cell<u16>,
}

impl ThreadBuf {
    fn register() -> Self {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let shared: SharedBuf = Arc::new(Mutex::new(Vec::new()));
        live_bufs()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(tid, Arc::clone(&shared));
        // Default lane name: the OS thread name when set.
        if let Some(name) = std::thread::current().name() {
            lane_names()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(tid, name.to_string());
        }
        Self {
            tid,
            shared,
            depth: Cell::new(0),
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        // Thread exit: move leftover events to the retired list so they
        // survive the thread, and unregister the live buffer.
        let mut events = self.shared.lock().unwrap_or_else(|e| e.into_inner());
        if !events.is_empty() {
            retired()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .append(&mut events);
        }
        drop(events);
        live_bufs()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.tid);
    }
}

thread_local! {
    static TBUF: ThreadBuf = ThreadBuf::register();
    static REQUEST_ID: Cell<u64> = const { Cell::new(0) };
}

/// The request id currently attached to this thread (0 = none). Spans
/// opened while a [`RequestScope`] is live automatically carry a
/// `req` argument with this value, so a busy daemon's trace can be
/// filtered to one request end-to-end.
pub fn current_request_id() -> u64 {
    REQUEST_ID.with(|c| c.get())
}

/// RAII request-id scope: while alive, every span this thread opens is
/// tagged `req = id`. Nesting restores the previous id on drop; the
/// worker pool re-enters the dispatching thread's scope inside each job
/// closure, so worker-side spans carry the same id.
#[must_use = "a request scope tags spans for as long as it lives"]
pub struct RequestScope {
    prev: u64,
}

impl RequestScope {
    /// Tag this thread's spans with `id` until the scope drops. An id of
    /// 0 clears the tag (useful for propagating "no request").
    pub fn enter(id: u64) -> Self {
        let prev = REQUEST_ID.with(|c| c.replace(id));
        Self { prev }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        REQUEST_ID.with(|c| c.set(self.prev));
    }
}

/// This thread's telemetry id (assigned on first use).
pub fn current_tid() -> u64 {
    TBUF.with(|b| b.tid)
}

/// Name the calling thread's lane in trace exports (e.g.
/// `"jigsaw-worker-3"`). Defaults to the OS thread name.
pub fn set_thread_lane(name: &str) {
    let tid = current_tid();
    lane_names()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(tid, name.to_string());
}

/// All known `(tid, lane name)` pairs, sorted by tid.
pub fn lanes() -> Vec<(u64, String)> {
    let mut v: Vec<(u64, String)> = lane_names()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, n)| (*k, n.clone()))
        .collect();
    v.sort_unstable_by_key(|(tid, _)| *tid);
    v
}

/// Number of events dropped because a thread buffer hit
/// [`MAX_EVENTS_PER_THREAD`].
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

fn emit(event: Event) {
    TBUF.with(|b| {
        let mut buf = b.shared.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() >= MAX_EVENTS_PER_THREAD {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.push(event);
        }
    });
}

/// Record a counter sample (a time-series point in the chrome trace).
/// No-op when telemetry is disabled.
pub fn counter_event(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let (tid, depth) = TBUF.with(|b| (b.tid, b.depth.get()));
    emit(Event {
        name,
        cat: crate::category_of(name),
        tid,
        ts_ns: crate::now_ns(),
        depth,
        kind: EventKind::Counter { value },
        args: Vec::new(),
    });
}

/// Drain every buffered event (live threads and retired ones), sorted by
/// start time then thread id. Buffers are left empty.
pub fn drain_events() -> Vec<Event> {
    let mut out: Vec<Event> = Vec::new();
    {
        let mut ret = retired().lock().unwrap_or_else(|e| e.into_inner());
        out.append(&mut ret);
    }
    let bufs: Vec<SharedBuf> = live_bufs()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .values()
        .cloned()
        .collect();
    for buf in bufs {
        let mut b = buf.lock().unwrap_or_else(|e| e.into_inner());
        out.append(&mut b);
    }
    out.sort_by_key(|e| (e.ts_ns, e.tid));
    out
}

// ---------------------------------------------------------------------------
// SpanGuard
// ---------------------------------------------------------------------------

/// RAII guard returned by [`crate::span!`]: records a completed-span event
/// when dropped. Inert (a single branch was paid) when telemetry is
/// disabled.
#[must_use = "a span guard measures the scope it lives in; binding it to _ drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    depth: u16,
    args: Vec<(&'static str, ArgValue)>,
    active: bool,
}

impl SpanGuard {
    /// Open a span. Prefer the [`crate::span!`] macro.
    #[inline]
    pub fn begin(name: &'static str, cat: &'static str) -> Self {
        if !crate::enabled() {
            return Self {
                name,
                cat,
                start_ns: 0,
                depth: 0,
                args: Vec::new(),
                active: false,
            };
        }
        let depth = TBUF.with(|b| {
            let d = b.depth.get() + 1;
            b.depth.set(d);
            d
        });
        let req = current_request_id();
        let args = if req != 0 {
            vec![("req", ArgValue::U64(req))]
        } else {
            Vec::new()
        };
        Self {
            name,
            cat,
            start_ns: crate::now_ns(),
            depth,
            args,
            active: true,
        }
    }

    /// Attach a structured argument (no-op on an inert guard).
    #[inline]
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.active {
            self.args.push((key, value.into()));
        }
    }

    /// Whether this guard is recording (telemetry was enabled at open).
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = crate::now_ns().saturating_sub(self.start_ns);
        TBUF.with(|b| b.depth.set(b.depth.get().saturating_sub(1)));
        emit(Event {
            name: self.name,
            cat: self.cat,
            tid: current_tid(),
            ts_ns: self.start_ns,
            depth: self.depth,
            kind: EventKind::Span { dur_ns },
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(not(feature = "off"))] // the compile-time kill switch makes guards inert
    fn span_records_nesting_depth_and_order() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        let _ = drain_events();
        {
            let _outer = crate::span!("test.outer", { m: 3usize });
            {
                let _inner = crate::span!("test.inner");
            }
        }
        let events: Vec<Event> = drain_events()
            .into_iter()
            .filter(|e| e.name.starts_with("test."))
            .collect();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "test.outer").unwrap();
        let inner = events.iter().find(|e| e.name == "test.inner").unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.cat, "test");
        // Inner nests within outer.
        let (EventKind::Span { dur_ns: od }, EventKind::Span { dur_ns: id }) =
            (&outer.kind, &inner.kind)
        else {
            panic!("span kinds expected");
        };
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(inner.ts_ns + id <= outer.ts_ns + od);
        assert_eq!(outer.args, vec![("m", ArgValue::U64(3))]);
    }

    #[test]
    fn disabled_guard_is_inert() {
        let _lock = crate::test_guard();
        crate::set_enabled(false);
        {
            let mut g = crate::span!("test.dead", { k: 1u64 });
            g.arg("extra", "x");
            assert!(!g.is_active());
        }
        crate::set_enabled(true);
        let leaked: Vec<Event> = drain_events()
            .into_iter()
            .filter(|e| e.name == "test.dead")
            .collect();
        assert!(leaked.is_empty());
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn counter_events_capture_values() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        counter_event("test.counterlane", 0.25);
        counter_event("test.counterlane", 0.125);
        let vals: Vec<f64> = drain_events()
            .into_iter()
            .filter(|e| e.name == "test.counterlane")
            .map(|e| match e.kind {
                EventKind::Counter { value } => value,
                _ => panic!("counter kind expected"),
            })
            .collect();
        assert_eq!(vals, vec![0.25, 0.125]);
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn events_survive_thread_exit() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        let _ = drain_events();
        std::thread::spawn(|| {
            let _g = crate::span!("test.ephemeral");
        })
        .join()
        .unwrap();
        let found = drain_events()
            .into_iter()
            .any(|e| e.name == "test.ephemeral");
        assert!(found, "retired thread's events must be drainable");
    }

    #[test]
    fn lane_naming() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        set_thread_lane("unit-test-lane");
        let tid = current_tid();
        assert!(lanes()
            .iter()
            .any(|(t, n)| *t == tid && n == "unit-test-lane"));
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn request_scope_tags_spans_and_nests() {
        let _lock = crate::test_guard();
        crate::set_enabled(true);
        let _ = drain_events();
        assert_eq!(current_request_id(), 0);
        {
            let _outer = RequestScope::enter(7);
            assert_eq!(current_request_id(), 7);
            let _a = crate::span!("test.req_a");
            {
                let _inner = RequestScope::enter(9);
                let _b = crate::span!("test.req_b");
            }
            assert_eq!(current_request_id(), 7, "inner scope restores on drop");
        }
        assert_eq!(current_request_id(), 0);
        let _untagged = crate::span!("test.req_none");
        drop(_untagged);
        let events: Vec<Event> = drain_events()
            .into_iter()
            .filter(|e| e.name.starts_with("test.req"))
            .collect();
        let req_of = |name: &str| {
            events
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.args.clone())
                .unwrap()
        };
        assert_eq!(req_of("test.req_a"), vec![("req", ArgValue::U64(7))]);
        assert_eq!(req_of("test.req_b"), vec![("req", ArgValue::U64(9))]);
        assert_eq!(req_of("test.req_none"), vec![]);
    }

    #[test]
    fn arg_value_conversions() {
        assert_eq!(ArgValue::from(3u32), ArgValue::U64(3));
        assert_eq!(ArgValue::from(-2i32), ArgValue::I64(-2));
        assert_eq!(ArgValue::from(0.5f32), ArgValue::F64(0.5));
        assert_eq!(ArgValue::from("s"), ArgValue::Str("s".into()));
        assert_eq!(ArgValue::from(true), ArgValue::Bool(true));
    }
}
