//! Flight recorder: a fixed-capacity ring of structured serve events for
//! in-flight introspection and postmortem dumps.
//!
//! The serving daemon records one [`FlightEvent`] per interesting
//! transition (job admitted/started/finished/failed, cache hit/miss/
//! evict, serial fallback taken, fault point fired). The ring keeps the
//! most recent `capacity` events; the `StatsReply` protocol frame ships
//! the tail to remote scrapers, and the serve engine dumps it to stderr
//! when it contains a panicking job — a black box for the crash that
//! just didn't happen.
//!
//! Writers reserve a slot with one `fetch_add` on the cursor and then
//! take that slot's own mutex, so concurrent writers never contend
//! unless the ring wraps onto a slot another writer still holds — the
//! record path is effectively lock-free at serving rates (events are
//! per-job, not per-sample). While the total number of records is below
//! capacity, no event is ever lost, concurrency notwithstanding.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default capacity of the process-wide recorder.
pub const FLIGHT_CAPACITY: usize = 256;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A job entered the daemon queue.
    JobAdmitted = 1,
    /// An executor picked the job up.
    JobStarted = 2,
    /// The job produced a result.
    JobFinished = 3,
    /// The job failed (validation, budget, or contained panic).
    JobFailed = 4,
    /// Plan-cache hit.
    CacheHit = 5,
    /// Plan-cache miss (a plan build follows).
    CacheMiss = 6,
    /// Plan-cache eviction.
    CacheEvict = 7,
    /// The engine fell back to the serial path.
    FallbackTaken = 8,
    /// An armed fault point fired.
    FaultFired = 9,
    /// An overloaded daemon refused a job (queue bounds or an
    /// already-expired deadline).
    JobShed = 10,
    /// The stuck-job watchdog cancelled a job's budget.
    WatchdogFired = 11,
    /// A reply frame could not be written back (client vanished).
    ReplyDropped = 12,
}

impl FlightKind {
    /// Wire tag (stable across versions — new kinds append).
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decode a wire tag.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => Self::JobAdmitted,
            2 => Self::JobStarted,
            3 => Self::JobFinished,
            4 => Self::JobFailed,
            5 => Self::CacheHit,
            6 => Self::CacheMiss,
            7 => Self::CacheEvict,
            8 => Self::FallbackTaken,
            9 => Self::FaultFired,
            10 => Self::JobShed,
            11 => Self::WatchdogFired,
            12 => Self::ReplyDropped,
            _ => return None,
        })
    }

    /// Short lowercase label for dumps and tables.
    pub fn label(self) -> &'static str {
        match self {
            Self::JobAdmitted => "job_admitted",
            Self::JobStarted => "job_started",
            Self::JobFinished => "job_finished",
            Self::JobFailed => "job_failed",
            Self::CacheHit => "cache_hit",
            Self::CacheMiss => "cache_miss",
            Self::CacheEvict => "cache_evict",
            Self::FallbackTaken => "fallback_taken",
            Self::FaultFired => "fault_fired",
            Self::JobShed => "job_shed",
            Self::WatchdogFired => "watchdog_fired",
            Self::ReplyDropped => "reply_dropped",
        }
    }
}

/// One recorded transition.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: FlightKind,
    /// The request this event belongs to (0 = none).
    pub request_id: u64,
    /// Kind-specific numeric payload (job tag, cache size, …).
    pub tag: u64,
    /// Free-form context, e.g. an error message or a fault-site name.
    pub detail: String,
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6}s] {:<14} req={} tag={}",
            self.ts_ns as f64 / 1e9,
            self.kind.label(),
            self.request_id,
            self.tag
        )?;
        if !self.detail.is_empty() {
            write!(f, " {}", self.detail)?;
        }
        Ok(())
    }
}

/// A fixed-capacity ring of [`FlightEvent`]s.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<(u64, FlightEvent)>>>,
    cursor: AtomicU64,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl FlightRecorder {
    /// A ring holding the `capacity` most recent events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight ring needs at least one slot");
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (retained or overwritten).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Append an event, overwriting the oldest once full.
    pub fn record(&self, event: FlightEvent) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some((seq, event));
    }

    /// The most recent `max` events, oldest first (FIFO).
    pub fn tail(&self, max: usize) -> Vec<FlightEvent> {
        let mut seen: Vec<(u64, FlightEvent)> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        seen.sort_unstable_by_key(|(seq, _)| *seq);
        if seen.len() > max {
            seen.drain(..seen.len() - max);
        }
        seen.into_iter().map(|(_, e)| e).collect()
    }

    /// Discard everything (tests and profiling-run starts).
    pub fn clear(&self) {
        for s in &self.slots {
            *s.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
        self.cursor.store(0, Ordering::Relaxed);
    }
}

/// The process-wide recorder ([`FLIGHT_CAPACITY`] slots).
pub fn global() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| FlightRecorder::new(FLIGHT_CAPACITY))
}

/// Record into the global ring iff telemetry is enabled. `detail` is
/// only materialized on the enabled path.
#[inline]
pub fn record(kind: FlightKind, request_id: u64, tag: u64, detail: &str) {
    if crate::enabled() {
        global().record(FlightEvent {
            ts_ns: crate::now_ns(),
            kind,
            request_id,
            tag,
            detail: detail.to_string(),
        });
    }
}

/// Render the global ring's tail as a multi-line dump (newest last),
/// e.g. for a stderr black-box dump after a contained panic.
pub fn dump_tail(max: usize) -> String {
    let mut s = String::from("flight recorder tail (oldest first):\n");
    let tail = global().tail(max);
    if tail.is_empty() {
        s.push_str("  (empty)\n");
    }
    for e in &tail {
        s.push_str(&format!("  {e}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> FlightEvent {
        FlightEvent {
            ts_ns: seq * 10,
            kind: FlightKind::JobFinished,
            request_id: seq,
            tag: seq,
            detail: String::new(),
        }
    }

    #[test]
    fn ring_is_fifo_and_capacity_bounded() {
        let r = FlightRecorder::new(4);
        for i in 0..6 {
            r.record(ev(i));
        }
        let tail = r.tail(10);
        assert_eq!(tail.len(), 4);
        let ids: Vec<u64> = tail.iter().map(|e| e.request_id).collect();
        assert_eq!(ids, vec![2, 3, 4, 5], "oldest two overwritten, FIFO order");
        assert_eq!(r.recorded(), 6);
        // tail(max) truncates from the old end.
        let last2: Vec<u64> = r.tail(2).iter().map(|e| e.request_id).collect();
        assert_eq!(last2, vec![4, 5]);
    }

    #[test]
    fn clear_empties_the_ring() {
        let r = FlightRecorder::new(2);
        r.record(ev(1));
        r.clear();
        assert!(r.tail(10).is_empty());
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn kind_round_trips_through_wire_tag() {
        for k in [
            FlightKind::JobAdmitted,
            FlightKind::JobStarted,
            FlightKind::JobFinished,
            FlightKind::JobFailed,
            FlightKind::CacheHit,
            FlightKind::CacheMiss,
            FlightKind::CacheEvict,
            FlightKind::FallbackTaken,
            FlightKind::FaultFired,
            FlightKind::JobShed,
            FlightKind::WatchdogFired,
            FlightKind::ReplyDropped,
        ] {
            assert_eq!(FlightKind::from_u8(k.as_u8()), Some(k));
            assert!(!k.label().is_empty());
        }
        assert_eq!(FlightKind::from_u8(0), None);
        assert_eq!(FlightKind::from_u8(200), None);
    }

    #[test]
    fn display_names_the_request() {
        let e = FlightEvent {
            ts_ns: 1_500_000_000,
            kind: FlightKind::JobFailed,
            request_id: 77,
            tag: 9,
            detail: "injected fault at serve.job".into(),
        };
        let s = e.to_string();
        assert!(s.contains("job_failed"), "{s}");
        assert!(s.contains("req=77"), "{s}");
        assert!(s.contains("injected fault"), "{s}");
    }
}
