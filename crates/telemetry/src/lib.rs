//! # jigsaw-telemetry — hermetic observability substrate
//!
//! The paper's whole argument is quantitative (`M·T^d` vs `Σ|bin|·B^d`
//! operation counts, per-phase runtime curves), so the workspace needs a
//! first-class way to *measure itself*. This crate provides that substrate
//! with zero external dependencies (the build is hermetic — no registry
//! access), mirroring how cuFINUFFT's load-balancing analysis and
//! FINUFFT's kernel tuning were both driven by per-phase instrumentation.
//!
//! Three pillars:
//!
//! * **Spans** — [`span!`] produces an RAII [`SpanGuard`]; on drop a
//!   completed-span [`Event`] (name, category, thread lane, start, dur,
//!   args) lands in the emitting thread's buffer. Buffers are per-thread
//!   (`Mutex` that is only ever contended by [`drain_events`]), so the hot
//!   path is effectively lock-free. Categories derive from the name prefix
//!   before the first `.` — `"gridding.scatter"` → `"gridding"` — giving
//!   the fleet of `engine` / `gridding` / `fft` / `nufft` / `recon` lanes.
//! * **Metrics** — a global [`Registry`] of named atomic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket log2 [`Histogram`]s with a
//!   deterministic [`Registry::snapshot`] for reporting.
//! * **Exporters** — human-readable table, JSON lines, and Chrome
//!   `trace_event` JSON ([`export::chrome_trace`]) loadable in
//!   `chrome://tracing` / [Perfetto](https://ui.perfetto.dev).
//!
//! ## Kill switch
//!
//! Telemetry defaults to **on** and is disabled either at runtime
//! (`JIGSAW_TELEMETRY=0`, [`set_enabled`], [`TelemetryConfig::disabled`])
//! or at compile time (the `off` cargo feature). When disabled, every
//! entry point costs one relaxed atomic load and a branch — verified by
//! the `telemetry_overhead` bench.
//!
//! ```
//! use jigsaw_telemetry as telemetry;
//! use jigsaw_telemetry::span;
//!
//! {
//!     let _guard = span!("gridding.scatter", { dim: 2usize, m: 1000usize });
//!     // ... timed work ...
//! } // span recorded here
//! telemetry::record_counter("grid.samples", 1000);
//! let snapshot = telemetry::global().snapshot();
//! let events = telemetry::drain_events();
//! let trace = telemetry::export::chrome_trace(&events, &telemetry::lanes());
//! assert!(trace.contains("\"traceEvents\""));
//! if telemetry::enabled() {
//!     assert!(snapshot.counters.iter().any(|(n, v)| n == "grid.samples" && *v >= 1000));
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod span;
pub mod window;

pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use span::{
    counter_event, current_request_id, current_tid, drain_events, lanes, set_thread_lane, ArgValue,
    Event, EventKind, RequestScope, SpanGuard,
};
pub use window::WindowedHistogram;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Kill switch
// ---------------------------------------------------------------------------

/// 0 = uninitialized, 1 = enabled, 2 = disabled.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether telemetry is currently collecting. This is the hot-path branch:
/// one relaxed atomic load (the lazy env read happens once, on first call).
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = env_enables(std::env::var("JIGSAW_TELEMETRY").ok().as_deref());
    let want = if on { 1 } else { 2 };
    // First initializer wins; an explicit set_enabled may already have run.
    let _ = STATE.compare_exchange(0, want, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == 1
}

/// The pure decision function behind the `JIGSAW_TELEMETRY` environment
/// variable: `0`, `false`, `off`, and `no` (any case) disable collection;
/// everything else — including the variable being unset — enables it.
pub fn env_enables(value: Option<&str>) -> bool {
    match value.map(str::trim) {
        Some(v) => !matches!(
            v.to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        None => true,
    }
}

/// Force telemetry on or off at runtime, overriding the environment.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Declarative configuration for the telemetry substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Whether spans, events, and metric mirroring are collected.
    pub enabled: bool,
}

impl TelemetryConfig {
    /// Collection on.
    pub fn enabled() -> Self {
        Self { enabled: true }
    }

    /// Collection off — the runtime kill switch. After
    /// [`TelemetryConfig::install`], every telemetry entry point is a
    /// single branch.
    pub fn disabled() -> Self {
        Self { enabled: false }
    }

    /// Read the `JIGSAW_TELEMETRY` environment variable (see
    /// [`env_enables`]).
    pub fn from_env() -> Self {
        Self {
            enabled: env_enables(std::env::var("JIGSAW_TELEMETRY").ok().as_deref()),
        }
    }

    /// Make this configuration the process-wide state.
    pub fn install(self) {
        set_enabled(self.enabled);
    }
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide telemetry epoch (first use).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Global registry + convenience recorders
// ---------------------------------------------------------------------------

/// The process-wide metrics registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// `global().counter(name).add(delta)` iff telemetry is enabled.
#[inline]
pub fn record_counter(name: &str, delta: u64) {
    if enabled() {
        global().counter(name).add(delta);
    }
}

/// `global().gauge(name).set(value)` iff telemetry is enabled.
#[inline]
pub fn record_gauge(name: &str, value: f64) {
    if enabled() {
        global().gauge(name).set(value);
    }
}

/// `global().histogram(name).record(value)` iff telemetry is enabled.
#[inline]
pub fn record_histogram(name: &str, value: u64) {
    if enabled() {
        global().histogram(name).record(value);
    }
}

/// Reset the global registry (zero all metrics, keep handles valid) and
/// discard all buffered events. Intended for tests and the start of a
/// profiling run.
pub fn reset() {
    global().reset();
    let _ = drain_events();
}

/// Mirror [`span::dropped_events`] into the `telemetry.dropped_events`
/// registry counter (topping it up to the true total, so repeated calls
/// are idempotent) and return the total. Call before snapshotting so
/// ring-buffer overflow is visible in metrics output instead of silent.
pub fn sync_dropped_events() -> u64 {
    let dropped = span::dropped_events();
    if dropped > 0 && enabled() {
        let c = global().counter("telemetry.dropped_events");
        let seen = c.get();
        if dropped > seen {
            c.add(dropped - seen);
        }
    }
    dropped
}

/// The category of a span name: the prefix before the first `.`
/// (`"gridding.scatter"` → `"gridding"`), or the whole name if undotted.
pub fn category_of(name: &'static str) -> &'static str {
    match name.find('.') {
        Some(i) => &name[..i],
        None => name,
    }
}

/// Open a telemetry span: `span!("cat.name")` or
/// `span!("cat.name", { key: value, ... })`. Returns an RAII
/// [`SpanGuard`]; the span is recorded when the guard drops. The category
/// is the name's prefix before the first `.`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::begin($name, $crate::category_of($name))
    };
    ($name:expr, { $($k:ident : $v:expr),* $(,)? }) => {{
        let mut __jigsaw_span = $crate::span::SpanGuard::begin($name, $crate::category_of($name));
        $( __jigsaw_span.arg(stringify!($k), $v); )*
        __jigsaw_span
    }};
}

/// Serialize tests that toggle the global kill switch or drain the global
/// event buffers — cargo runs unit tests on parallel threads, and those
/// globals are process-wide.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_decision_table() {
        assert!(env_enables(None));
        assert!(env_enables(Some("1")));
        assert!(env_enables(Some("on")));
        assert!(env_enables(Some("yes")));
        assert!(!env_enables(Some("0")));
        assert!(!env_enables(Some("false")));
        assert!(!env_enables(Some("FALSE")));
        assert!(!env_enables(Some("off")));
        assert!(!env_enables(Some(" no ")));
    }

    #[test]
    fn category_derivation() {
        assert_eq!(category_of("gridding.scatter"), "gridding");
        assert_eq!(category_of("fft.process"), "fft");
        assert_eq!(category_of("undotted"), "undotted");
        assert_eq!(category_of("a.b.c"), "a");
    }

    #[test]
    fn config_round_trip() {
        let _lock = test_guard();
        assert!(TelemetryConfig::enabled().enabled);
        assert!(!TelemetryConfig::disabled().enabled);
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        // With the compile-time `off` feature, enabled() is always false.
        assert_eq!(enabled(), !cfg!(feature = "off"));
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
