//! Exporters: Chrome `trace_event` JSON (loadable in `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev)), JSON-lines event dumps, and
//! Prometheus text exposition for scraping a live daemon.
//!
//! All JSON is hand-rolled in the same style as the bench harness — the
//! build is hermetic, so no serde. Timestamps convert from the internal
//! nanosecond clock to chrome's microsecond `ts`/`dur` fields with three
//! decimal places, preserving nanosecond precision.

use crate::metrics::Snapshot;
use crate::span::{ArgValue, Event, EventKind};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(u) => u.to_string(),
        ArgValue::I64(i) => i.to_string(),
        ArgValue::F64(f) => crate::metrics::fmt_f64(*f),
        ArgValue::Str(s) => format!("\"{}\"", escape_json(s)),
        ArgValue::Bool(b) => b.to_string(),
    }
}

/// Microseconds with nanosecond precision, as chrome expects.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn args_obj(args: &[(&'static str, ArgValue)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{}\": {}", escape_json(k), arg_json(v));
    }
    s.push('}');
    s
}

/// Render events (plus thread-lane metadata) as a Chrome `trace_event`
/// JSON document: `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
///
/// * lanes become `ph: "M"` `thread_name` metadata records, so Perfetto
///   shows `jigsaw-worker-0` … lanes instead of bare thread ids;
/// * spans become `ph: "X"` complete events with `ts`/`dur` in µs;
/// * counter samples become `ph: "C"` events rendered as time-series.
pub fn chrome_trace(events: &[Event], lanes: &[(u64, String)]) -> String {
    let mut s = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            s.push_str(",\n");
        }
        *first = false;
        s.push_str("  ");
        s.push_str(&line);
    };
    for (tid, name) in lanes {
        push(
            format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape_json(name)
            ),
            &mut first,
        );
    }
    for e in events {
        match &e.kind {
            EventKind::Span { dur_ns } => push(
                format!(
                    "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"name\": \"{}\", \
                     \"cat\": \"{}\", \"ts\": {}, \"dur\": {}, \"args\": {}}}",
                    e.tid,
                    escape_json(e.name),
                    escape_json(e.cat),
                    us(e.ts_ns),
                    us(*dur_ns),
                    args_obj(&e.args)
                ),
                &mut first,
            ),
            EventKind::Counter { value } => push(
                format!(
                    "{{\"ph\": \"C\", \"pid\": 1, \"tid\": {}, \"name\": \"{}\", \
                     \"cat\": \"{}\", \"ts\": {}, \"args\": {{\"value\": {}}}}}",
                    e.tid,
                    escape_json(e.name),
                    escape_json(e.cat),
                    us(e.ts_ns),
                    crate::metrics::fmt_f64(*value)
                ),
                &mut first,
            ),
        }
    }
    s.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    s
}

/// One JSON object per line, schema
/// `{"name", "cat", "tid", "ts_ns", "depth", kind fields..., "args"}` —
/// grep/`jq`-friendly raw dump.
pub fn events_jsonl(events: &[Event]) -> String {
    let mut s = String::new();
    for e in events {
        let kind = match &e.kind {
            EventKind::Span { dur_ns } => format!("\"kind\": \"span\", \"dur_ns\": {dur_ns}"),
            EventKind::Counter { value } => format!(
                "\"kind\": \"counter\", \"value\": {}",
                crate::metrics::fmt_f64(*value)
            ),
        };
        let _ = writeln!(
            s,
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"tid\": {}, \"ts_ns\": {}, \"depth\": {}, \
             {kind}, \"args\": {}}}",
            escape_json(e.name),
            escape_json(e.cat),
            e.tid,
            e.ts_ns,
            e.depth,
            args_obj(&e.args)
        );
    }
    s
}

/// Drain all buffered events and write them as a chrome trace to `path`
/// (parent directories created as needed). Returns the number of events
/// written.
pub fn write_chrome_trace(path: &Path) -> io::Result<usize> {
    let events = crate::drain_events();
    let lanes = crate::lanes();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_trace(&events, &lanes))?;
    Ok(events.len())
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Map a dotted metric name onto the Prometheus name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: dots (and every other invalid byte)
/// become underscores; a leading digit gains a `_` prefix.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// A float in Prometheus sample syntax (`NaN`/`+Inf`/`-Inf` spellings).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Render a [`Snapshot`] in the Prometheus text exposition format
/// (version 0.0.4): `# HELP`/`# TYPE` headers, counters with a `_total`
/// suffix, gauges verbatim, and histograms as cumulative
/// `_bucket{le="…"}` series plus `_sum`/`_count`.
///
/// Histogram `le` bounds come from the log2 bucket upper edges. Our
/// buckets are `[lo, hi)` over integers, so `le = hi - 1` is exact;
/// the saturated top bucket folds into the mandatory `+Inf` bucket.
pub fn prometheus(snapshot: &Snapshot) -> String {
    let mut s = String::new();
    for (name, v) in &snapshot.counters {
        let p = format!("{}_total", prometheus_name(name));
        let _ = writeln!(s, "# HELP {p} Counter {}.", escape_prom_help(name));
        let _ = writeln!(s, "# TYPE {p} counter");
        let _ = writeln!(s, "{p} {v}");
    }
    for (name, v) in &snapshot.gauges {
        let p = prometheus_name(name);
        let _ = writeln!(s, "# HELP {p} Gauge {}.", escape_prom_help(name));
        let _ = writeln!(s, "# TYPE {p} gauge");
        let _ = writeln!(s, "{p} {}", prom_f64(*v));
    }
    for (name, h) in &snapshot.histograms {
        let p = prometheus_name(name);
        let _ = writeln!(s, "# HELP {p} Histogram {}.", escape_prom_help(name));
        let _ = writeln!(s, "# TYPE {p} histogram");
        let mut cum = 0u64;
        for &(_lo, hi, c) in &h.buckets {
            cum += c;
            if hi == u64::MAX {
                // The saturated top bucket has no finite upper edge; it
                // lands in +Inf below.
                continue;
            }
            let _ = writeln!(s, "{p}_bucket{{le=\"{}\"}} {cum}", hi - 1);
        }
        let _ = writeln!(s, "{p}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(s, "{p}_sum {}", h.sum);
        let _ = writeln!(s, "{p}_count {}", h.count);
    }
    s
}

/// Help text with exposition-format escapes (`\\` and `\n`).
fn escape_prom_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    fn span_event(name: &'static str, tid: u64, ts_ns: u64, dur_ns: u64) -> Event {
        Event {
            name,
            cat: crate::category_of(name),
            tid,
            ts_ns,
            depth: 1,
            kind: EventKind::Span { dur_ns },
            args: vec![
                ("m", ArgValue::U64(42)),
                ("label", ArgValue::Str("x".into())),
            ],
        }
    }

    #[test]
    fn escapes_json_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn chrome_trace_has_metadata_spans_and_counters() {
        let events = vec![
            span_event("gridding.scatter", 3, 1_500, 2_000_000),
            Event {
                name: "recon.cg_residual",
                cat: "recon",
                tid: 1,
                ts_ns: 5_000,
                depth: 0,
                kind: EventKind::Counter { value: 0.125 },
                args: Vec::new(),
            },
        ];
        let lanes = vec![(1, "main".to_string()), (3, "jigsaw-worker-0".to_string())];
        let trace = chrome_trace(&events, &lanes);
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\": \"M\""));
        assert!(trace.contains("\"name\": \"jigsaw-worker-0\""));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"ts\": 1.500"));
        assert!(trace.contains("\"dur\": 2000.000"));
        assert!(trace.contains("\"cat\": \"gridding\""));
        assert!(trace.contains("\"m\": 42"));
        assert!(trace.contains("\"ph\": \"C\""));
        assert!(trace.contains("\"value\": 0.125"));
        // Valid JSON by the in-repo parser.
        let doc = crate::json::parse(&trace).expect("chrome trace must be valid JSON");
        let evs = doc
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        assert_eq!(evs.len(), 4); // 2 metadata + 1 span + 1 counter
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let events = vec![
            span_event("fft.process", 1, 10, 20),
            Event {
                name: "recon.cg_residual",
                cat: "recon",
                tid: 1,
                ts_ns: 30,
                depth: 0,
                kind: EventKind::Counter { value: 1.0 },
                args: Vec::new(),
            },
        ];
        let out = events_jsonl(&events);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            crate::json::parse(line).expect("each jsonl line parses");
        }
        assert!(lines[0].contains("\"dur_ns\": 20"));
        assert!(lines[1].contains("\"kind\": \"counter\""));
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = chrome_trace(&[], &[]);
        let doc = crate::json::parse(&trace).unwrap();
        assert_eq!(
            doc.get("traceEvents")
                .and_then(|v| v.as_arr())
                .map(Vec::len),
            Some(0)
        );
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![("serve.cache.hit".to_string(), 42)],
            gauges: vec![("serve.queue_depth".to_string(), 3.0)],
            histograms: vec![(
                "serve.job_latency_ns".to_string(),
                HistogramSnapshot {
                    count: 5,
                    sum: 1029,
                    buckets: vec![(0, 1, 1), (1, 2, 2), (2, 4, 1), (1024, 2048, 1)],
                },
            )],
        }
    }

    /// Minimal text-exposition (0.0.4) grammar check: every line is a
    /// `# HELP`/`# TYPE` comment or `name{labels} value`; names follow
    /// the metric-name grammar; every sample's base name was declared by
    /// a preceding `# TYPE`; histogram buckets are cumulative.
    fn validate_prometheus(text: &str) {
        fn valid_name(n: &str) -> bool {
            !n.is_empty()
                && n.chars().enumerate().all(|(i, c)| {
                    c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
                })
        }
        let mut typed: Vec<(String, String)> = Vec::new();
        let mut last_bucket: Option<(String, u64)> = None;
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "no blank lines in exposition");
            if let Some(rest) = line.strip_prefix("# ") {
                let mut parts = rest.splitn(3, ' ');
                let keyword = parts.next().unwrap();
                let name = parts.next().expect("comment names a metric");
                assert!(matches!(keyword, "HELP" | "TYPE"), "{line}");
                assert!(valid_name(name), "{line}");
                if keyword == "TYPE" {
                    let ty = parts.next().expect("TYPE has a type").to_string();
                    assert!(matches!(ty.as_str(), "counter" | "gauge" | "histogram"));
                    typed.push((name.to_string(), ty));
                }
                continue;
            }
            let (name_labels, value) = line.rsplit_once(' ').expect("sample has a value");
            let (name, labels) = match name_labels.split_once('{') {
                Some((n, l)) => (n, Some(l.strip_suffix('}').expect("balanced braces"))),
                None => (name_labels, None),
            };
            assert!(valid_name(name), "{line}");
            value
                .parse::<f64>()
                .or_else(|e| match value {
                    "+Inf" | "-Inf" | "NaN" => Ok(0.0),
                    _ => Err(e),
                })
                .unwrap_or_else(|_| panic!("unparseable value in {line}"));
            // The sample must belong to a declared family.
            let family = typed.iter().find(|(n, ty)| match ty.as_str() {
                "counter" | "gauge" => name == *n,
                "histogram" => {
                    name == format!("{n}_bucket")
                        || name == format!("{n}_sum")
                        || name == format!("{n}_count")
                }
                _ => false,
            });
            let (fam, ty) = family.unwrap_or_else(|| panic!("undeclared sample {line}"));
            if ty == "histogram" && name == format!("{fam}_bucket") {
                let le = labels
                    .and_then(|l| l.strip_prefix("le=\""))
                    .and_then(|l| l.strip_suffix('"'))
                    .expect("bucket carries le label");
                assert!(le == "+Inf" || le.parse::<u64>().is_ok(), "{line}");
                let cum: u64 = value.parse().unwrap();
                if let Some((prev_fam, prev_cum)) = &last_bucket {
                    if prev_fam == fam {
                        assert!(cum >= *prev_cum, "buckets must be cumulative: {line}");
                    }
                }
                last_bucket = Some((fam.clone(), cum));
            } else {
                last_bucket = None;
            }
        }
        assert!(!typed.is_empty(), "exposition declared no metrics");
    }

    #[test]
    fn prometheus_golden_output() {
        let text = prometheus(&sample_snapshot());
        let expected = "\
# HELP serve_cache_hit_total Counter serve.cache.hit.
# TYPE serve_cache_hit_total counter
serve_cache_hit_total 42
# HELP serve_queue_depth Gauge serve.queue_depth.
# TYPE serve_queue_depth gauge
serve_queue_depth 3
# HELP serve_job_latency_ns Histogram serve.job_latency_ns.
# TYPE serve_job_latency_ns histogram
serve_job_latency_ns_bucket{le=\"0\"} 1
serve_job_latency_ns_bucket{le=\"1\"} 3
serve_job_latency_ns_bucket{le=\"3\"} 4
serve_job_latency_ns_bucket{le=\"2047\"} 5
serve_job_latency_ns_bucket{le=\"+Inf\"} 5
serve_job_latency_ns_sum 1029
serve_job_latency_ns_count 5
";
        assert_eq!(text, expected);
        validate_prometheus(&text);
    }

    #[test]
    fn prometheus_handles_edge_values() {
        let snap = Snapshot {
            counters: vec![],
            gauges: vec![
                ("g.nan".to_string(), f64::NAN),
                ("g.inf".to_string(), f64::INFINITY),
                ("7weird name".to_string(), 1.5),
            ],
            histograms: vec![(
                "h.top".to_string(),
                HistogramSnapshot {
                    count: 1,
                    sum: u64::MAX,
                    buckets: vec![(1 << 63, u64::MAX, 1)],
                },
            )],
        };
        let text = prometheus(&snap);
        validate_prometheus(&text);
        assert!(text.contains("g_nan NaN"));
        assert!(text.contains("g_inf +Inf"));
        assert!(text.contains("_7weird_name 1.5"));
        // The saturated top bucket only appears as +Inf.
        assert!(text.contains("h_top_bucket{le=\"+Inf\"} 1"));
        assert!(!text.contains(&format!("le=\"{}\"", u64::MAX - 1)));
    }

    #[test]
    fn prometheus_name_mapping() {
        assert_eq!(prometheus_name("serve.cache.hit"), "serve_cache_hit");
        assert_eq!(prometheus_name("already_fine:ok"), "already_fine:ok");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name(""), "_");
    }

    #[test]
    fn empty_snapshot_exposes_nothing() {
        let snap = Snapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
        };
        assert!(prometheus(&snap).is_empty());
    }
}
