//! Exporters: Chrome `trace_event` JSON (loadable in `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev)) and JSON-lines event dumps.
//!
//! All JSON is hand-rolled in the same style as the bench harness — the
//! build is hermetic, so no serde. Timestamps convert from the internal
//! nanosecond clock to chrome's microsecond `ts`/`dur` fields with three
//! decimal places, preserving nanosecond precision.

use crate::span::{ArgValue, Event, EventKind};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(u) => u.to_string(),
        ArgValue::I64(i) => i.to_string(),
        ArgValue::F64(f) => crate::metrics::fmt_f64(*f),
        ArgValue::Str(s) => format!("\"{}\"", escape_json(s)),
        ArgValue::Bool(b) => b.to_string(),
    }
}

/// Microseconds with nanosecond precision, as chrome expects.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn args_obj(args: &[(&'static str, ArgValue)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{}\": {}", escape_json(k), arg_json(v));
    }
    s.push('}');
    s
}

/// Render events (plus thread-lane metadata) as a Chrome `trace_event`
/// JSON document: `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
///
/// * lanes become `ph: "M"` `thread_name` metadata records, so Perfetto
///   shows `jigsaw-worker-0` … lanes instead of bare thread ids;
/// * spans become `ph: "X"` complete events with `ts`/`dur` in µs;
/// * counter samples become `ph: "C"` events rendered as time-series.
pub fn chrome_trace(events: &[Event], lanes: &[(u64, String)]) -> String {
    let mut s = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            s.push_str(",\n");
        }
        *first = false;
        s.push_str("  ");
        s.push_str(&line);
    };
    for (tid, name) in lanes {
        push(
            format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape_json(name)
            ),
            &mut first,
        );
    }
    for e in events {
        match &e.kind {
            EventKind::Span { dur_ns } => push(
                format!(
                    "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"name\": \"{}\", \
                     \"cat\": \"{}\", \"ts\": {}, \"dur\": {}, \"args\": {}}}",
                    e.tid,
                    escape_json(e.name),
                    escape_json(e.cat),
                    us(e.ts_ns),
                    us(*dur_ns),
                    args_obj(&e.args)
                ),
                &mut first,
            ),
            EventKind::Counter { value } => push(
                format!(
                    "{{\"ph\": \"C\", \"pid\": 1, \"tid\": {}, \"name\": \"{}\", \
                     \"cat\": \"{}\", \"ts\": {}, \"args\": {{\"value\": {}}}}}",
                    e.tid,
                    escape_json(e.name),
                    escape_json(e.cat),
                    us(e.ts_ns),
                    crate::metrics::fmt_f64(*value)
                ),
                &mut first,
            ),
        }
    }
    s.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    s
}

/// One JSON object per line, schema
/// `{"name", "cat", "tid", "ts_ns", "depth", kind fields..., "args"}` —
/// grep/`jq`-friendly raw dump.
pub fn events_jsonl(events: &[Event]) -> String {
    let mut s = String::new();
    for e in events {
        let kind = match &e.kind {
            EventKind::Span { dur_ns } => format!("\"kind\": \"span\", \"dur_ns\": {dur_ns}"),
            EventKind::Counter { value } => format!(
                "\"kind\": \"counter\", \"value\": {}",
                crate::metrics::fmt_f64(*value)
            ),
        };
        let _ = writeln!(
            s,
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"tid\": {}, \"ts_ns\": {}, \"depth\": {}, \
             {kind}, \"args\": {}}}",
            escape_json(e.name),
            escape_json(e.cat),
            e.tid,
            e.ts_ns,
            e.depth,
            args_obj(&e.args)
        );
    }
    s
}

/// Drain all buffered events and write them as a chrome trace to `path`
/// (parent directories created as needed). Returns the number of events
/// written.
pub fn write_chrome_trace(path: &Path) -> io::Result<usize> {
    let events = crate::drain_events();
    let lanes = crate::lanes();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_trace(&events, &lanes))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_event(name: &'static str, tid: u64, ts_ns: u64, dur_ns: u64) -> Event {
        Event {
            name,
            cat: crate::category_of(name),
            tid,
            ts_ns,
            depth: 1,
            kind: EventKind::Span { dur_ns },
            args: vec![
                ("m", ArgValue::U64(42)),
                ("label", ArgValue::Str("x".into())),
            ],
        }
    }

    #[test]
    fn escapes_json_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn chrome_trace_has_metadata_spans_and_counters() {
        let events = vec![
            span_event("gridding.scatter", 3, 1_500, 2_000_000),
            Event {
                name: "recon.cg_residual",
                cat: "recon",
                tid: 1,
                ts_ns: 5_000,
                depth: 0,
                kind: EventKind::Counter { value: 0.125 },
                args: Vec::new(),
            },
        ];
        let lanes = vec![(1, "main".to_string()), (3, "jigsaw-worker-0".to_string())];
        let trace = chrome_trace(&events, &lanes);
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\": \"M\""));
        assert!(trace.contains("\"name\": \"jigsaw-worker-0\""));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"ts\": 1.500"));
        assert!(trace.contains("\"dur\": 2000.000"));
        assert!(trace.contains("\"cat\": \"gridding\""));
        assert!(trace.contains("\"m\": 42"));
        assert!(trace.contains("\"ph\": \"C\""));
        assert!(trace.contains("\"value\": 0.125"));
        // Valid JSON by the in-repo parser.
        let doc = crate::json::parse(&trace).expect("chrome trace must be valid JSON");
        let evs = doc
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        assert_eq!(evs.len(), 4); // 2 metadata + 1 span + 1 counter
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let events = vec![
            span_event("fft.process", 1, 10, 20),
            Event {
                name: "recon.cg_residual",
                cat: "recon",
                tid: 1,
                ts_ns: 30,
                depth: 0,
                kind: EventKind::Counter { value: 1.0 },
                args: Vec::new(),
            },
        ];
        let out = events_jsonl(&events);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            crate::json::parse(line).expect("each jsonl line parses");
        }
        assert!(lines[0].contains("\"dur_ns\": 20"));
        assert!(lines[1].contains("\"kind\": \"counter\""));
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = chrome_trace(&[], &[]);
        let doc = crate::json::parse(&trace).unwrap();
        assert_eq!(
            doc.get("traceEvents")
                .and_then(|v| v.as_arr())
                .map(Vec::len),
            Some(0)
        );
    }
}
