//! Rolling-window histograms: last-60-seconds quantiles instead of
//! lifetime aggregates.
//!
//! A [`WindowedHistogram`] is a ring of epoch slots, each an independent
//! log2 histogram (same bucket layout as [`Histogram`]). Time is divided
//! into fixed epochs of `epoch_ns`; recording a sample lands it in the
//! slot for the current epoch, lazily reclaiming the slot from an
//! expired epoch via a single compare-exchange. A snapshot sums the
//! slots whose epoch ids are still inside the window, so old traffic
//! ages out without any background thread.
//!
//! The record path is lock-free and matches [`Histogram::record`]'s cost
//! within a small constant: one division, one relaxed load, and three
//! relaxed adds in the steady state (the compare-exchange only runs on
//! the first sample of each epoch per slot). Samples racing with a slot
//! rollover on an epoch boundary may be lost — bounded by the number of
//! concurrently recording threads, once per epoch — which is an accepted
//! trade for keeping the hot path wait-free. The ring holds
//! `live_epochs + 2` slots so a snapshot taken while the newest epoch is
//! being reclaimed still sees every live epoch.
//!
//! [`Histogram`]: crate::metrics::Histogram

use crate::metrics::{Histogram, HistogramSnapshot, HIST_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Epoch id meaning "slot never used".
const EMPTY: u64 = u64::MAX;

struct EpochSlot {
    /// Which epoch this slot currently accumulates (`EMPTY` = unused).
    epoch: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl EpochSlot {
    fn new() -> Self {
        Self {
            epoch: AtomicU64::new(EMPTY),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    fn add_sample(&self, value: u64) {
        self.buckets[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// A histogram that only remembers the last `live_epochs × epoch_ns`
/// nanoseconds of samples.
///
/// Deterministic variants [`record_at`](Self::record_at) and
/// [`snapshot_at`](Self::snapshot_at) take an explicit clock reading so
/// window semantics are testable without sleeping; [`record`](Self::record)
/// and [`snapshot`](Self::snapshot) use the process telemetry clock
/// ([`crate::now_ns`]).
pub struct WindowedHistogram {
    epoch_ns: u64,
    live_epochs: u64,
    slots: Vec<EpochSlot>,
}

impl std::fmt::Debug for WindowedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedHistogram")
            .field("epoch_ns", &self.epoch_ns)
            .field("live_epochs", &self.live_epochs)
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl WindowedHistogram {
    /// A window of `live_epochs` epochs, each `epoch_ns` long. The ring
    /// allocates `live_epochs + 2` slots.
    pub fn new(epoch_ns: u64, live_epochs: usize) -> Self {
        assert!(epoch_ns > 0, "epoch length must be positive");
        assert!(live_epochs > 0, "window needs at least one live epoch");
        Self {
            epoch_ns,
            live_epochs: live_epochs as u64,
            slots: (0..live_epochs + 2).map(|_| EpochSlot::new()).collect(),
        }
    }

    /// The conventional serving window: last 60 s as six 10-second
    /// epochs.
    pub fn last_60s() -> Self {
        Self::new(10_000_000_000, 6)
    }

    /// Window length in nanoseconds (`live_epochs × epoch_ns`).
    pub fn window_ns(&self) -> u64 {
        self.epoch_ns * self.live_epochs
    }

    /// Record `value` as of clock reading `now_ns`.
    #[inline]
    pub fn record_at(&self, now_ns: u64, value: u64) {
        let epoch = now_ns / self.epoch_ns;
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        let cur = slot.epoch.load(Ordering::Relaxed);
        if cur != epoch {
            if cur != EMPTY && cur > epoch {
                // A stale recorder raced past a reclaimed slot; its
                // sample is already outside the window.
                return;
            }
            // Claim the slot for this epoch. The winner zeroes; losers
            // fall through and record (their adds may race the zeroing
            // once per epoch — bounded, documented loss).
            if slot
                .epoch
                .compare_exchange(cur, epoch, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                slot.zero();
            }
        }
        slot.add_sample(value);
    }

    /// Record `value` now (process telemetry clock).
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_at(crate::now_ns(), value);
    }

    /// Sum of the live epochs as of clock reading `now_ns`, in the same
    /// frozen form as [`Histogram::snapshot`].
    pub fn snapshot_at(&self, now_ns: u64) -> HistogramSnapshot {
        let epoch = now_ns / self.epoch_ns;
        let oldest = epoch.saturating_sub(self.live_epochs - 1);
        let mut buckets = [0u64; HIST_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        for slot in &self.slots {
            let e = slot.epoch.load(Ordering::Acquire);
            if e == EMPTY || e < oldest || e > epoch {
                continue;
            }
            for (acc, b) in buckets.iter_mut().zip(&slot.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
            count += slot.count.load(Ordering::Relaxed);
            sum = sum.wrapping_add(slot.sum.load(Ordering::Relaxed));
        }
        let buckets = buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Histogram::bucket_bounds(i);
                (lo, hi, c)
            })
            .collect();
        HistogramSnapshot {
            count,
            sum,
            buckets,
        }
    }

    /// Sum of the live epochs as of now (process telemetry clock).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.snapshot_at(crate::now_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_inside_one_epoch_aggregate() {
        let w = WindowedHistogram::new(100, 4);
        w.record_at(10, 5);
        w.record_at(20, 7);
        w.record_at(99, 5);
        let s = w.snapshot_at(99);
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 17);
        assert_eq!(s.buckets, vec![(4, 8, 3)]);
    }

    #[test]
    fn expired_epochs_age_out() {
        let w = WindowedHistogram::new(100, 2);
        w.record_at(0, 1); // epoch 0
        w.record_at(150, 2); // epoch 1
                             // Window [epoch 0, epoch 1]: both visible.
        assert_eq!(w.snapshot_at(199).count, 2);
        // Window [epoch 1, epoch 2]: epoch 0 expired.
        let s = w.snapshot_at(250);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 2);
        // Window [epoch 3, epoch 4]: everything expired.
        assert_eq!(w.snapshot_at(450).count, 0);
    }

    #[test]
    fn slot_reuse_zeroes_old_epoch() {
        let w = WindowedHistogram::new(100, 2); // 4 slots
        w.record_at(50, 9); // epoch 0 → slot 0
        w.record_at(450, 3); // epoch 4 → slot 0 again, must reclaim
        let s = w.snapshot_at(450);
        assert_eq!(s.count, 1, "old epoch's samples must not leak");
        assert_eq!(s.sum, 3);
    }

    #[test]
    fn stale_recorder_behind_a_reclaimed_slot_is_dropped() {
        let w = WindowedHistogram::new(100, 2); // 4 slots
        w.record_at(450, 3); // epoch 4 occupies slot 0
        w.record_at(50, 9); // epoch 0 maps to slot 0 but is long expired
        assert_eq!(w.snapshot_at(450).count, 1);
    }

    #[test]
    fn window_length_and_defaults() {
        let w = WindowedHistogram::new(10, 6);
        assert_eq!(w.window_ns(), 60);
        assert_eq!(WindowedHistogram::last_60s().window_ns(), 60_000_000_000);
    }

    #[test]
    fn live_clock_path_records() {
        let w = WindowedHistogram::new(1_000_000_000, 4);
        w.record(42);
        assert_eq!(w.snapshot().count, 1);
    }
}
