//! JIGSAW hardware configuration — Table I of the paper.
//!
//! | Property | Value |
//! |---|---|
//! | Target grid dimensions (N) | 8–1024 |
//! | Virtual tile dimensions (T) | 8 |
//! | Interpolation window dimensions (W) | 1–8 |
//! | Table oversampling factor (L) | 1–64 |
//! | Pipeline bit width | 32-bit |
//! | Interpolation weight bit width | 16-bit |
//!
//! The "target grid" here is the grid the accelerator accumulates into —
//! the NuFFT's *oversampled* grid (`σN` on the host side).

use crate::{Result, SimError};
use jigsaw_core::config::GridParams;
use jigsaw_core::kernel::KernelKind;
use jigsaw_fixed::Round;

/// Clock frequency of the synthesized design (§IV: 1.0 GHz).
pub const CLOCK_HZ: f64 = 1.0e9;
/// 2-D pipeline depth in cycles (§VI-A).
pub const PIPELINE_DEPTH_2D: u64 = 12;
/// 3-D slice pipeline depth in cycles (§VI-A).
pub const PIPELINE_DEPTH_3D: u64 = 15;
/// Input bus width in bits (Fig. 5: "non-uniform samples arrive on a
/// 128-bit bus").
pub const INPUT_BUS_BITS: u64 = 128;
/// Output: "two 64-bit uniform target points are read through the bus
/// each cycle".
pub const OUTPUT_POINTS_PER_CYCLE: u64 = 2;

/// A validated JIGSAW configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct JigsawConfig {
    /// Target (oversampled) grid size per dimension, 8–1024.
    pub grid: usize,
    /// Virtual tile dimension. The paper's implementation fixes `T = 8`.
    pub tile: usize,
    /// Interpolation window width, 1–8.
    pub width: usize,
    /// Table oversampling factor, 1–64 (power of two).
    pub table_oversampling: usize,
    /// Interpolation kernel whose weights fill the LUT SRAMs.
    pub kernel: KernelKind,
    /// Hardware rounding mode for the fixed-point datapath.
    pub round: Round,
}

impl JigsawConfig {
    /// The paper's running example: `N = 1024, T = 8, W = 6, L = 32`,
    /// Beatty Kaiser-Bessel, round-to-nearest.
    pub fn paper_default() -> Self {
        Self {
            grid: 1024,
            tile: 8,
            width: 6,
            table_oversampling: 32,
            kernel: KernelKind::Auto.resolve(6, 2.0),
            round: Round::Nearest,
        }
    }

    /// Same shape with a smaller grid (for fast tests).
    pub fn small(grid: usize) -> Self {
        Self {
            grid,
            ..Self::paper_default()
        }
    }

    /// Validate against Table I.
    pub fn validate(&self) -> Result<()> {
        if !(8..=1024).contains(&self.grid) {
            return Err(SimError::Config(format!(
                "target grid {} outside Table I range 8–1024",
                self.grid
            )));
        }
        if self.tile != 8 {
            return Err(SimError::Config(format!(
                "virtual tile dimension must be 8 (Table I), got {}",
                self.tile
            )));
        }
        if !self.grid.is_multiple_of(self.tile) {
            return Err(SimError::Config(format!(
                "tile {} must divide grid {}",
                self.tile, self.grid
            )));
        }
        if !(1..=8).contains(&self.width) {
            return Err(SimError::Config(format!(
                "window width {} outside Table I range 1–8",
                self.width
            )));
        }
        if !(1..=64).contains(&self.table_oversampling)
            || !self.table_oversampling.is_power_of_two()
        {
            return Err(SimError::Config(format!(
                "table oversampling {} outside Table I range 1–64 (power of two)",
                self.table_oversampling
            )));
        }
        if matches!(self.kernel, KernelKind::Auto) {
            return Err(SimError::Config(
                "kernel must be resolved before configuring hardware".into(),
            ));
        }
        Ok(())
    }

    /// Stored LUT entries: `WL/2 + 1 ≤ 257` — fits the 256-entry dual-port
    /// SRAM of §IV with the always-zero edge entry optimized away.
    pub fn lut_entries(&self) -> usize {
        self.width * self.table_oversampling / 2 + 1
    }

    /// Grid-side parameter view (shared vocabulary with `jigsaw-core`).
    pub fn grid_params(&self) -> GridParams {
        GridParams {
            grid: self.grid,
            width: self.width,
            table_oversampling: self.table_oversampling,
            tile: self.tile,
            kernel: self.kernel,
        }
    }

    /// Accumulation SRAM per pipeline in bits (2-D): each pipeline owns one
    /// dice column of `(G/T)²` points × 64-bit complex.
    pub fn accum_bits_per_pipeline(&self) -> u64 {
        let tiles = (self.grid / self.tile) as u64;
        tiles * tiles * 64
    }

    /// Total accumulation SRAM in bits across the `T²` pipelines.
    pub fn total_accum_bits(&self) -> u64 {
        self.accum_bits_per_pipeline() * (self.tile * self.tile) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        assert!(JigsawConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn table_i_boundaries() {
        let mut c = JigsawConfig::paper_default();
        c.grid = 8;
        assert!(c.validate().is_ok());
        c.grid = 1024;
        assert!(c.validate().is_ok());
        c.grid = 4;
        assert!(c.validate().is_err());
        c.grid = 2048;
        assert!(c.validate().is_err());
    }

    #[test]
    fn width_range() {
        let mut c = JigsawConfig::paper_default();
        for w in 1..=8 {
            c.width = w;
            assert!(c.validate().is_ok(), "W={w}");
        }
        c.width = 9;
        assert!(c.validate().is_err());
        c.width = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn l_range_and_pow2() {
        let mut c = JigsawConfig::paper_default();
        for l in [1usize, 2, 4, 8, 16, 32, 64] {
            c.table_oversampling = l;
            assert!(c.validate().is_ok(), "L={l}");
        }
        c.table_oversampling = 128;
        assert!(c.validate().is_err());
        c.table_oversampling = 48;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tile_fixed_at_8() {
        let mut c = JigsawConfig::paper_default();
        c.tile = 16;
        assert!(c.validate().is_err());
    }

    #[test]
    fn lut_capacity_matches_sram() {
        // Max config W = 8, L = 64 → 257 entries (256-weight SRAM + the
        // structurally-zero edge weight).
        let mut c = JigsawConfig::paper_default();
        c.width = 8;
        c.table_oversampling = 64;
        assert_eq!(c.lut_entries(), 257);
    }

    #[test]
    fn accum_sram_capacity_is_8mb_at_n1024() {
        // §IV: "JIGSAW only has ~8MB of on-chip SRAM" for the 1024² grid.
        let c = JigsawConfig::paper_default();
        let total_bytes = c.total_accum_bits() / 8;
        assert_eq!(total_bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn dma_bandwidth_matches_ddr4_claim() {
        // §IV System Integration: "with a synthesized clock speed of
        // 1.0 GHz, JIGSAW is able to transmit and receive data at DDR4
        // bandwidth (~20 GB/s)". 128 bits/cycle × 1 GHz = 16 GB/s — the
        // stream never outruns a DDR4-2666 channel.
        let bytes_per_second = INPUT_BUS_BITS as f64 / 8.0 * CLOCK_HZ;
        assert_eq!(bytes_per_second, 16e9);
        assert!(bytes_per_second <= 21.3e9); // DDR4-2666 peak
    }

    #[test]
    fn grid_params_roundtrip() {
        let c = JigsawConfig::paper_default();
        let p = c.grid_params();
        assert!(p.validate().is_ok());
        assert_eq!(p.grid, 1024);
        assert_eq!(p.lut_len(), c.lut_entries());
    }
}
