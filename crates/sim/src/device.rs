//! Analytic device models for the paper's four evaluation platforms.
//!
//! The paper's Figs. 6–8 compare wall-clock and energy across an Intel
//! i9-9900KS running MIRT, an Nvidia Titan Xp running Impatient and
//! Slice-and-Dice CUDA kernels, and the synthesized JIGSAW ASIC. We have
//! none of that hardware, so this module captures each platform as an
//! *operating point* — per-sample gridding cost, presort cost, FFT
//! throughput, and power draw — calibrated so the paper's headline ratios
//! emerge (S&D GPU ≈ 250× MIRT and ≈ 16× Impatient on gridding; JIGSAW ≈
//! 1500× MIRT; equal gridding/FFT time on S&D GPU; gridding ≈ 25 % of
//! end-to-end time on JIGSAW). The *measured* Rust engines in
//! `jigsaw-core` demonstrate the same algorithmic ordering on real
//! hardware; these models project the absolute scale of the paper's
//! testbed. Calibration details live in `EXPERIMENTS.md`.
//!
//! All gridding costs scale with the window area `W²/36` relative to the
//! paper's `W = 6` operating point.

use crate::config::{CLOCK_HZ, PIPELINE_DEPTH_2D};
use crate::power::{PowerModel, Variant};
use crate::JigsawConfig;

/// An analytic platform operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Display name.
    pub name: &'static str,
    /// Gridding nanoseconds per non-uniform sample at `W = 6`.
    pub grid_ns_per_sample: f64,
    /// Pre-sort (binning) nanoseconds per sample (zero unless the
    /// algorithm requires a presort pass).
    pub presort_ns_per_sample: f64,
    /// Uniform-FFT nanoseconds per oversampled grid point (includes
    /// apodization and transfers).
    pub fft_ns_per_point: f64,
    /// Average power draw in watts while gridding.
    pub power_w: f64,
}

impl Platform {
    /// MIRT on the paper's Intel i9-9900KS: serial double-precision
    /// Matlab gridding, ~1.5 µs/sample.
    pub fn mirt_cpu() -> Self {
        Self {
            name: "MIRT (CPU)",
            grid_ns_per_sample: 1500.0,
            presort_ns_per_sample: 0.0,
            fft_ns_per_point: 10.0,
            // Package draw of the i9-9900KS under a single-threaded
            // Matlab gridding loop (well below the 170 W all-core limit).
            power_w: 100.0,
        }
    }

    /// Impatient on the Titan Xp: binned output-driven CUDA gridding with
    /// on-the-fly Kaiser-Bessel weights and a presort pass.
    pub fn impatient_gpu() -> Self {
        Self {
            name: "Impatient (GPU)",
            grid_ns_per_sample: 96.0,
            presort_ns_per_sample: 15.0,
            fft_ns_per_point: 9.0,
            // Effective average draw while gridding, implied by the
            // paper's 1.95 J / 95× figures — the memory-bound kernel runs
            // far below the Titan Xp's 250 W TDP.
            power_w: 52.0,
        }
    }

    /// Slice-and-Dice CUDA implementation on the same Titan Xp: LUT
    /// weights, no presort, combined input/output parallelism.
    pub fn slice_dice_gpu() -> Self {
        Self {
            name: "Slice-and-Dice (GPU)",
            grid_ns_per_sample: 6.0,
            presort_ns_per_sample: 0.0,
            fft_ns_per_point: 9.0,
            // Effective draw implied by the paper's 108.27 mJ / 1300×
            // energy-efficiency figures.
            power_w: 47.0,
        }
    }

    /// Gridding wall-clock in seconds for `m` samples with window width `w`.
    pub fn gridding_seconds(&self, m: usize, w: usize) -> f64 {
        let scale = (w * w) as f64 / 36.0;
        (self.grid_ns_per_sample * scale + self.presort_ns_per_sample) * m as f64 * 1e-9
    }

    /// End-to-end NuFFT wall-clock: gridding + FFT over `grid_points`.
    pub fn nufft_seconds(&self, m: usize, w: usize, grid_points: usize) -> f64 {
        self.gridding_seconds(m, w) + self.fft_ns_per_point * grid_points as f64 * 1e-9
    }

    /// Gridding energy in joules.
    pub fn gridding_energy_joules(&self, m: usize, w: usize) -> f64 {
        self.gridding_seconds(m, w) * self.power_w
    }
}

/// The JIGSAW operating point, derived from the simulator's timing law
/// and the calibrated power model rather than free constants.
#[derive(Debug, Clone)]
pub struct JigsawPlatform {
    cfg: JigsawConfig,
    power: PowerModel,
    /// FFT runs on the host after readout (the paper pairs JIGSAW with the
    /// same host FFT as the GPU platforms).
    pub host_fft_ns_per_point: f64,
}

impl JigsawPlatform {
    /// Build for a hardware configuration.
    pub fn new(cfg: JigsawConfig) -> Self {
        Self {
            cfg,
            power: PowerModel::calibrated(),
            host_fft_ns_per_point: 9.0,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        "JIGSAW (ASIC)"
    }

    /// Gridding seconds: the `M + 12` cycle law at 1.0 GHz.
    pub fn gridding_seconds(&self, m: usize) -> f64 {
        (m as u64 + PIPELINE_DEPTH_2D) as f64 / CLOCK_HZ
    }

    /// End-to-end: gridding + result readout + host FFT.
    pub fn nufft_seconds(&self, m: usize, grid_points: usize) -> f64 {
        let readout = (grid_points as f64 / 2.0) / CLOCK_HZ;
        self.gridding_seconds(m) + readout + self.host_fft_ns_per_point * grid_points as f64 * 1e-9
    }

    /// Gridding energy: calibrated average power × gridding time.
    pub fn gridding_energy_joules(&self, m: usize) -> f64 {
        let w2 = (self.cfg.width * self.cfg.width) as f64;
        let p_mw = self.power.power_mw(&self.cfg, Variant::TwoD, w2, true);
        p_mw * 1e-3 * self.gridding_seconds(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: usize = 400_000;
    const G: usize = 512; // oversampled grid for N = 256

    #[test]
    fn gridding_speedup_ratios_match_paper_shape() {
        let mirt = Platform::mirt_cpu();
        let imp = Platform::impatient_gpu();
        let sd = Platform::slice_dice_gpu();
        let jig = JigsawPlatform::new(JigsawConfig::paper_default());
        let t_mirt = mirt.gridding_seconds(M, 6);
        let t_imp = imp.gridding_seconds(M, 6);
        let t_sd = sd.gridding_seconds(M, 6);
        let t_jig = jig.gridding_seconds(M);
        // Fig. 6 headline ratios (±40 % tolerance — the paper's own
        // numbers are averages over five differently-shaped images).
        let sd_vs_mirt = t_mirt / t_sd;
        assert!(
            (150.0..400.0).contains(&sd_vs_mirt),
            "S&D vs MIRT {sd_vs_mirt}"
        );
        let sd_vs_imp = t_imp / t_sd;
        assert!(
            (10.0..25.0).contains(&sd_vs_imp),
            "S&D vs Impatient {sd_vs_imp}"
        );
        let jig_vs_mirt = t_mirt / t_jig;
        assert!(
            (1000.0..2200.0).contains(&jig_vs_mirt),
            "JIGSAW vs MIRT {jig_vs_mirt}"
        );
        let jig_vs_sd = t_sd / t_jig;
        assert!((4.0..9.0).contains(&jig_vs_sd), "JIGSAW vs S&D {jig_vs_sd}");
    }

    #[test]
    fn slice_dice_gpu_equalizes_gridding_and_fft() {
        // §VI-A: "with equal gridding and FFT computation time".
        let sd = Platform::slice_dice_gpu();
        let tg = sd.gridding_seconds(M, 6);
        let tf = sd.nufft_seconds(M, 6, G * G) - tg;
        let ratio = tg / tf;
        assert!((0.5..2.0).contains(&ratio), "gridding/FFT ratio {ratio}");
    }

    #[test]
    fn mirt_gridding_dominates_nufft() {
        // §I: gridding ≥ 99 % of NuFFT time on the CPU.
        let mirt = Platform::mirt_cpu();
        let tg = mirt.gridding_seconds(M, 6);
        let total = mirt.nufft_seconds(M, 6, G * G);
        assert!(tg / total > 0.99, "{}", tg / total);
    }

    #[test]
    fn jigsaw_gridding_is_minor_fraction_end_to_end() {
        // §VI-A: "gridding consuming only 25 % of the computation time".
        let jig = JigsawPlatform::new(JigsawConfig::paper_default());
        let tg = jig.gridding_seconds(M);
        let total = jig.nufft_seconds(M, G * G);
        let frac = tg / total;
        assert!(
            (0.1..0.45).contains(&frac),
            "JIGSAW gridding fraction {frac}"
        );
    }

    #[test]
    fn energy_ordering_matches_fig8() {
        // Impatient ≫ S&D GPU ≫ JIGSAW, by orders of magnitude.
        let imp = Platform::impatient_gpu().gridding_energy_joules(M, 6);
        let sd = Platform::slice_dice_gpu().gridding_energy_joules(M, 6);
        let jig = JigsawPlatform::new(JigsawConfig::paper_default()).gridding_energy_joules(M);
        assert!(imp / sd > 10.0, "Impatient/S&D energy {}", imp / sd);
        assert!(sd / jig > 500.0, "S&D/JIGSAW energy {}", sd / jig);
        assert!(
            imp / jig > 10_000.0,
            "Impatient/JIGSAW energy {}",
            imp / jig
        );
    }

    #[test]
    fn window_width_scales_software_platforms_only() {
        let sd = Platform::slice_dice_gpu();
        let t6 = sd.gridding_seconds(M, 6);
        let t8 = sd.gridding_seconds(M, 8);
        assert!((t8 / t6 - 64.0 / 36.0).abs() < 1e-9);
        // JIGSAW's cycle count is W-independent (§IV).
        let jig = JigsawPlatform::new(JigsawConfig::paper_default());
        assert_eq!(jig.gridding_seconds(M), jig.gridding_seconds(M));
    }
}
