//! Waveform-style pipeline trace — per-cycle stage occupancy.
//!
//! Functional verification of hardware normally involves inspecting
//! waveforms; this module provides the simulator equivalent: for every
//! cycle, which sample occupies each pipeline stage (select, weight
//! lookup, interpolation, accumulate). Used by tests to assert the
//! in-order, stall-free, initiation-interval-1 behavior that makes
//! `M + 12` hold, and by `jigsaw simulate --trace` for human inspection.

use crate::config::PIPELINE_DEPTH_2D;

/// Occupancy of the four stage groups in one cycle. `None` = bubble.
/// Stage windows (2-D): select cycles 1–4, weight lookup 5–6,
/// interpolation 7–9, accumulate 10–12 after issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRow {
    /// Cycle number (0-based; sample `i` is issued in cycle `i`).
    pub cycle: u64,
    /// Sample id in the select stage.
    pub select: Option<u64>,
    /// Sample id in the weight-lookup stage.
    pub weight: Option<u64>,
    /// Sample id in the interpolation stage.
    pub interpolate: Option<u64>,
    /// Sample id in the accumulate stage.
    pub accumulate: Option<u64>,
}

/// Generate the stage-occupancy trace for an `m`-sample stream over the
/// first `cycles` cycles (the occupancy depends only on issue order —
/// the datapath is stall-free by construction, which the cycle-accurate
/// simulator verifies against the actual arithmetic).
pub fn trace_2d(m: u64, cycles: u64) -> Vec<TraceRow> {
    // A stage spanning [lo, hi] cycles after issue holds sample
    // `cycle − lo` while `lo ≤ age ≤ hi`; with II = 1 the *youngest*
    // resident sample is shown (a real pipeline holds several samples in
    // a multi-cycle stage; one register per cycle of latency).
    let occupant = |cycle: u64, lo: u64| -> Option<u64> {
        // Youngest sample whose age ∈ [lo, hi] is the one issued lo ago.
        cycle.checked_sub(lo).filter(|&s| s < m)
    };
    (0..cycles)
        .map(|c| TraceRow {
            cycle: c,
            select: occupant(c, 1),
            weight: occupant(c, 5),
            interpolate: occupant(c, 7),
            accumulate: occupant(c, 10),
        })
        .collect()
}

/// Render a trace as fixed-width text (one row per cycle).
pub fn render(rows: &[TraceRow]) -> String {
    let mut out = String::from("cycle | select | lookup | interp | accum\n");
    let cell = |v: Option<u64>| match v {
        Some(s) => format!("{s:>6}"),
        None => "     -".to_string(),
    };
    for r in rows {
        out.push_str(&format!(
            "{:>5} | {} | {} | {} | {}\n",
            r.cycle,
            cell(r.select),
            cell(r.weight),
            cell(r.interpolate),
            cell(r.accumulate)
        ));
    }
    out
}

/// The cycle in which sample `i` retires (its accumulates commit).
pub fn retire_cycle(i: u64) -> u64 {
    i + PIPELINE_DEPTH_2D
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initiation_interval_is_one() {
        // A new sample enters select every cycle until the stream ends.
        let t = trace_2d(10, 12);
        for c in 1..11u64 {
            assert_eq!(t[c as usize].select, Some(c - 1));
        }
        assert_eq!(t[0].select, None); // nothing has reached select yet
        assert_eq!(t[11].select, None); // stream exhausted
    }

    #[test]
    fn stages_are_in_order_with_fixed_latency() {
        let t = trace_2d(100, 40);
        for r in &t {
            // A sample reaches weight lookup 4 cycles after select, etc.
            if let (Some(s), Some(w)) = (r.select, r.weight) {
                assert_eq!(s, w + 4);
            }
            if let (Some(w), Some(i)) = (r.weight, r.interpolate) {
                assert_eq!(w, i + 2);
            }
            if let (Some(i), Some(a)) = (r.interpolate, r.accumulate) {
                assert_eq!(i, a + 3);
            }
        }
    }

    #[test]
    fn no_bubbles_in_steady_state() {
        // Once full (cycle ≥ 10) and before drain, every stage is busy.
        let m = 50;
        let t = trace_2d(m, 50);
        for r in t.iter().skip(10).take((m - 10) as usize) {
            assert!(r.select.is_some() || r.cycle > m);
            assert!(r.weight.is_some());
            assert!(r.interpolate.is_some());
            assert!(r.accumulate.is_some());
        }
    }

    #[test]
    fn drain_matches_pipeline_depth() {
        // The last sample (m−1) retires at cycle m−1+12, so the total
        // elapsed cycle count is m+12 — the paper's law, from occupancy.
        assert_eq!(retire_cycle(0), 12);
        let m = 37u64;
        assert_eq!(retire_cycle(m - 1) + 1, m + 12);
        let t = trace_2d(m, m + 13);
        // After cycle m+11 the accumulate stage empties.
        let last_busy = t
            .iter()
            .rev()
            .find(|r| r.accumulate.is_some())
            .unwrap()
            .cycle;
        assert_eq!(last_busy, m - 1 + 10);
    }

    #[test]
    fn render_produces_readable_rows() {
        let s = render(&trace_2d(3, 5));
        assert!(s.starts_with("cycle | select"));
        assert_eq!(s.lines().count(), 6);
        assert!(s.contains("    0 |      - |      - |      - |      -"));
    }
}
