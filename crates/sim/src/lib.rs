//! # jigsaw-sim — cycle-level model of the JIGSAW streaming accelerator
//!
//! The paper implements Slice-and-Dice in hardware: a `T×T = 64` grid of
//! identical 32-bit fixed-point pipelines, each with a private interpolation
//! weight LUT SRAM and a private accumulation SRAM, fed by a 128-bit DMA
//! stream that broadcasts one non-uniform sample per cycle at 1.0 GHz
//! (§IV, Fig. 5). Because every pipeline owns one dice column and `W ≤ T`
//! guarantees at most one hit per column per sample, the design is
//! **stall-free**: an `M`-sample 2-D gridding completes in exactly
//! `M + 12` cycles (pipeline depth 12), and the 3-D slice variant in
//! `(M + 15)·Nz` (unsorted) or `Σ_z(|bin_z| + 15)` (Z-sorted).
//!
//! We cannot synthesize 16 nm silicon, so the reproduction is:
//!
//! * **Functionally bit-exact**: every arithmetic step (coordinate
//!   truncation, forward-distance adders, LUT folding, Knuth 3-multiply
//!   complex products, Q15.16 saturating accumulation) is performed in the
//!   same fixed-point formats the paper specifies (32-bit pipelines,
//!   16-bit weight components).
//! * **Cycle-faithful**: [`machine::Jigsaw2d::run_cycle_accurate`]
//!   advances per-pipeline stage registers cycle by cycle and *derives*
//!   the `M + 12` law; the fast functional mode is verified bit-identical
//!   against it.
//! * **Power/area by calibrated model**: [`power`] decomposes Table II
//!   into SRAM-bit and pipeline-logic contributions (constants fitted to
//!   the paper's synthesis numbers, clearly marked as such).
//! * **Cross-platform projection**: [`device`] holds analytic operating
//!   points for the four evaluation platforms (MIRT CPU, Impatient GPU,
//!   Slice-and-Dice GPU, JIGSAW) used to regenerate Figs. 6–8.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod device;
pub mod hwlut;
pub mod machine;
pub mod power;
pub mod rtl;
pub mod slice3d;
pub mod trace;

pub use config::JigsawConfig;
pub use machine::{Jigsaw2d, SimReport, SimRun};
pub use slice3d::Jigsaw3dSlice;

/// Errors from configuration validation or input conversion.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Parameter outside the ranges of Table I.
    Config(String),
    /// Malformed input stream.
    Data(String),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Config(m) => write!(f, "configuration error: {m}"),
            SimError::Data(m) => write!(f, "data error: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias.
pub type Result<T> = core::result::Result<T, SimError>;
