//! Power and area model — regenerating Table II.
//!
//! We cannot run a 16 nm synthesis flow, so this module models JIGSAW's
//! power and area as the paper's own analysis suggests decomposing them:
//! "approximately 95 % of this area is used for the on-chip storage of the
//! 1024×1024 uniform target grid, which is also responsible for over 56 %
//! of the power consumption" (§VI-B), and the 3-D variant draws less power
//! purely through "reduced switching activity".
//!
//! The model has six constants — SRAM area/bit, two leakage terms, and
//! two per-operation energies — **fitted** to the four rows of Table II
//! (documented in `EXPERIMENTS.md`). What the model *predicts* (rather
//! than fits) is every other configuration: smaller grids, different `W`,
//! sorted-vs-unsorted 3-D streams, and the per-run energies of Fig. 8.
//!
//! Fit quality: the four Table II rows are reproduced to < 0.1 %, because
//! the decomposition has exactly the paper's structure — static leakage
//! proportional to SRAM bits plus per-variant logic base, and dynamic
//! energy proportional to switching activity (window MACs and accumulator
//! read-modify-writes per cycle).

use crate::config::{JigsawConfig, CLOCK_HZ};
use crate::machine::SimReport;

/// Accelerator variant (row selector of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// JIGSAW 2D.
    TwoD,
    /// JIGSAW 3D Slice.
    ThreeDSlice,
}

/// The calibrated power/area model.
#[derive(Debug, Clone)]
pub struct PowerModel {
    /// Accumulator SRAM area per bit (mm²) — 16 nm macro estimate fitted
    /// from Table II: (12.20 − 0.42) mm² / 8 MiB.
    pub sram_area_per_bit_mm2: f64,
    /// Non-SRAM (pipelines + LUTs + control) area, 2-D variant (mm²).
    pub logic_area_2d_mm2: f64,
    /// Non-SRAM area, 3-D slice variant (mm²).
    pub logic_area_3d_mm2: f64,
    /// Accumulator SRAM leakage for the full 8 MiB array (mW); scales
    /// linearly with bits for other grid sizes.
    pub sram_leak_mw: f64,
    /// Energy per 64-bit accumulator read-modify-write (pJ).
    pub sram_rmw_pj: f64,
    /// Logic base power (clock tree + leakage), per variant (mW).
    pub logic_base_2d_mw: f64,
    /// Logic base power for the 3-D variant (mW).
    pub logic_base_3d_mw: f64,
    /// Logic energy per window-point operation — one select hit, LUT
    /// read pair, weight combine, and MAC (pJ).
    pub logic_mac_pj: f64,
}

/// Reference SRAM capacity of the paper's configuration (bits of 8 MiB).
const BITS_8MIB: f64 = 8.0 * 1024.0 * 1024.0 * 8.0;

impl PowerModel {
    /// Constants fitted to Table II (see module docs).
    pub fn calibrated() -> Self {
        Self {
            sram_area_per_bit_mm2: (12.20 - 0.42) / BITS_8MIB,
            logic_area_2d_mm2: 0.42,
            logic_area_3d_mm2: 0.64,
            sram_leak_mw: 40.24,
            sram_rmw_pj: 2.289,
            logic_base_2d_mw: 63.44,
            logic_base_3d_mw: 63.44,
            logic_mac_pj: 0.855,
        }
    }

    /// Die area in mm² for a configuration, with or without the
    /// accumulation SRAM (the two sub-rows of Table II).
    pub fn area_mm2(&self, cfg: &JigsawConfig, variant: Variant, with_accum_sram: bool) -> f64 {
        let logic = match variant {
            Variant::TwoD => self.logic_area_2d_mm2,
            Variant::ThreeDSlice => self.logic_area_3d_mm2,
        };
        if with_accum_sram {
            logic + cfg.total_accum_bits() as f64 * self.sram_area_per_bit_mm2
        } else {
            logic
        }
    }

    /// Average power in mW given the per-cycle switching activity
    /// `macs_per_cycle` (window-point operations per clock; 2-D streaming
    /// saturates at `W²`, 3-D slice streaming averages `W³/Nz`).
    pub fn power_mw(
        &self,
        cfg: &JigsawConfig,
        variant: Variant,
        macs_per_cycle: f64,
        with_accum_sram: bool,
    ) -> f64 {
        let logic_base = match variant {
            Variant::TwoD => self.logic_base_2d_mw,
            Variant::ThreeDSlice => self.logic_base_3d_mw,
        };
        // pJ per cycle at 1 GHz = mW.
        let ghz = CLOCK_HZ / 1e9;
        let logic_dyn = self.logic_mac_pj * macs_per_cycle * ghz;
        if with_accum_sram {
            let leak = self.sram_leak_mw * cfg.total_accum_bits() as f64 / BITS_8MIB;
            let sram_dyn = self.sram_rmw_pj * macs_per_cycle * ghz;
            logic_base + logic_dyn + leak + sram_dyn
        } else {
            logic_base + logic_dyn
        }
    }

    /// Regenerate Table II: `(label, power mW, area mm²)` for the paper's
    /// `N = 1024, W = 6` configuration.
    pub fn table_ii(&self) -> Vec<(&'static str, f64, f64)> {
        let cfg = JigsawConfig::paper_default();
        // 2-D: every cycle accepts a sample hitting W² = 36 window points.
        let act_2d = (cfg.width * cfg.width) as f64;
        // 3-D slice: a sample's W³ window points spread over Nz slice
        // passes of the stream → W³/Nz active points per streamed cycle.
        let act_3d = (cfg.width.pow(3)) as f64 / cfg.grid as f64;
        vec![
            (
                "2D (8MB SRAM)",
                self.power_mw(&cfg, Variant::TwoD, act_2d, true),
                self.area_mm2(&cfg, Variant::TwoD, true),
            ),
            (
                "2D (no accum SRAM)",
                self.power_mw(&cfg, Variant::TwoD, act_2d, false),
                self.area_mm2(&cfg, Variant::TwoD, false),
            ),
            (
                "3D Slice (8MB SRAM)",
                self.power_mw(&cfg, Variant::ThreeDSlice, act_3d, true),
                self.area_mm2(&cfg, Variant::ThreeDSlice, true),
            ),
            (
                "3D Slice (no accum SRAM)",
                self.power_mw(&cfg, Variant::ThreeDSlice, act_3d, false),
                self.area_mm2(&cfg, Variant::ThreeDSlice, false),
            ),
        ]
    }

    /// Energy in joules of a simulated run: static power × runtime plus
    /// per-operation dynamic energy.
    pub fn energy_joules(&self, cfg: &JigsawConfig, variant: Variant, report: &SimReport) -> f64 {
        let logic_base = match variant {
            Variant::TwoD => self.logic_base_2d_mw,
            Variant::ThreeDSlice => self.logic_base_3d_mw,
        };
        let leak = self.sram_leak_mw * cfg.total_accum_bits() as f64 / BITS_8MIB;
        let static_w = (logic_base + leak) * 1e-3;
        let t = report.gridding_seconds();
        let dyn_j = (self.logic_mac_pj + self.sram_rmw_pj) * 1e-12 * report.ops.interp_macs as f64;
        static_w * t + dyn_j
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::OpCounts;

    /// Paper Table II values.
    const TABLE_II: [(&str, f64, f64); 4] = [
        ("2D (8MB SRAM)", 216.86, 12.20),
        ("2D (no accum SRAM)", 94.22, 0.42),
        ("3D Slice (8MB SRAM)", 104.36, 12.42),
        ("3D Slice (no accum SRAM)", 63.62, 0.64),
    ];

    #[test]
    fn reproduces_table_ii_within_one_percent() {
        let rows = PowerModel::calibrated().table_ii();
        for ((label, power, area), (plabel, ppower, parea)) in rows.iter().zip(TABLE_II) {
            assert_eq!(*label, plabel);
            assert!(
                (power - ppower).abs() / ppower < 0.01,
                "{label}: power {power:.2} vs paper {ppower}"
            );
            assert!(
                (area - parea).abs() / parea < 0.01,
                "{label}: area {area:.2} vs paper {parea}"
            );
        }
    }

    #[test]
    fn sram_dominates_area_and_power_as_stated() {
        // §VI-B: ~95 % of area is the target-grid SRAM; >56 % of power.
        let m = PowerModel::calibrated();
        let cfg = JigsawConfig::paper_default();
        let total_area = m.area_mm2(&cfg, Variant::TwoD, true);
        let sram_area = total_area - m.area_mm2(&cfg, Variant::TwoD, false);
        assert!(sram_area / total_area > 0.95);
        let total_p = m.power_mw(&cfg, Variant::TwoD, 36.0, true);
        let sram_p = total_p - m.power_mw(&cfg, Variant::TwoD, 36.0, false);
        assert!(sram_p / total_p > 0.56);
    }

    #[test]
    fn smaller_grids_shrink_sram_linearly() {
        let m = PowerModel::calibrated();
        let big = JigsawConfig::paper_default();
        let small = JigsawConfig::small(512);
        let a_big = m.area_mm2(&big, Variant::TwoD, true) - m.logic_area_2d_mm2;
        let a_small = m.area_mm2(&small, Variant::TwoD, true) - m.logic_area_2d_mm2;
        assert!((a_big / a_small - 4.0).abs() < 1e-9); // 1024² / 512² = 4
    }

    #[test]
    fn energy_of_typical_run_matches_paper_scale() {
        // Fig. 8: JIGSAW consumes ~84 µJ on average across the five
        // evaluation images. A ~400k-sample image should land in that
        // order of magnitude.
        let m = PowerModel::calibrated();
        let cfg = JigsawConfig::paper_default();
        let report = SimReport {
            samples: 400_000,
            compute_cycles: 400_012,
            readout_cycles: 1024 * 1024 / 2,
            ops: OpCounts {
                interp_macs: 400_000 * 36,
                accum_rmw: 400_000 * 36,
                ..Default::default()
            },
        };
        let e = m.energy_joules(&cfg, Variant::TwoD, &report);
        assert!(
            (2e-5..5e-4).contains(&e),
            "energy {e} J outside the paper's order of magnitude"
        );
    }

    #[test]
    fn three_d_power_below_two_d() {
        // Reduced switching activity must lower power (§VI-B).
        let m = PowerModel::calibrated();
        let cfg = JigsawConfig::paper_default();
        let p2 = m.power_mw(&cfg, Variant::TwoD, 36.0, true);
        let p3 = m.power_mw(&cfg, Variant::ThreeDSlice, 216.0 / 1024.0, true);
        assert!(p3 < p2 / 2.0, "{p3} vs {p2}");
    }
}
