//! JIGSAW 3D Slice — the third-dimension variant (§IV "Gridding in 2D and
//! 3D").
//!
//! A `1024³` target grid would need ~8 GB of accumulation SRAM, so JIGSAW
//! follows "modern algorithms and accelerators" and processes 3-D volumes
//! as a series of 2-D slices, reusing the same ~8 MB accumulator array per
//! slice. The select and weight-lookup stages gain a z-coordinate path
//! (pipeline depth 15); per slice, only samples whose z-window covers that
//! slice contribute.
//!
//! Runtime:
//! * **unsorted** input: every slice must re-stream all `M` samples —
//!   `(M + 15)·Nz` cycles;
//! * **Z-sorted** input ("essentially binning in the Z-dimension and
//!   letting Slice-and-Dice obviate binning in 2D"): each slice streams
//!   only its bin — `Σ_z (|bin_z| + 15) ≈ (M + 15)·Wz` cycles.

use crate::config::{JigsawConfig, PIPELINE_DEPTH_3D};
use crate::hwlut::HwLut;
use crate::machine::{OpCounts, SimReport};
use crate::{Result, SimError};
use jigsaw_core::decomp::Decomposer;
use jigsaw_fixed::{CFx16, CFx32, Fx16};
use jigsaw_num::C64;

/// One quantized 3-D input sample: three 32-bit coordinates
/// (`[z, y, x]`, units `1/L`) and a 32-bit complex value — exactly one
/// 128-bit bus beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedSample3d {
    /// Quantized `[z, y, x]` coordinate.
    pub coord: [u32; 3],
    /// Complex sample value.
    pub value: CFx16<15>,
}

/// Output of a 3-D run.
#[derive(Debug, Clone)]
pub struct SimRun3d {
    /// Row-major `G³` grid (`[z, y, x]`) in the accumulator format.
    pub grid: Vec<CFx32<16>>,
    /// Timing and counters.
    pub report: SimReport,
}

impl SimRun3d {
    /// Convert to `f64`, undoing the normalization scale.
    pub fn grid_c64(&self, value_scale: f64) -> Vec<C64> {
        self.grid
            .iter()
            .map(|z| z.to_c64().scale(value_scale))
            .collect()
    }
}

/// The 3-D slice accelerator instance.
pub struct Jigsaw3dSlice {
    cfg: JigsawConfig,
    dec: Decomposer,
    lut: HwLut,
}

impl Jigsaw3dSlice {
    /// Instantiate for a validated configuration (the grid is `G³`).
    pub fn new(cfg: JigsawConfig) -> Result<Self> {
        cfg.validate()?;
        let params = cfg.grid_params();
        Ok(Self {
            dec: Decomposer::new(&params),
            lut: HwLut::build(&cfg),
            cfg,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &JigsawConfig {
        &self.cfg
    }

    /// Quantize host-side 3-D samples (coordinates in oversampled-grid
    /// units) into the DMA stream format; returns the value scale.
    pub fn quantize_inputs(
        &self,
        coords: &[[f64; 3]],
        values: &[C64],
    ) -> Result<(Vec<FixedSample3d>, f64)> {
        if coords.len() != values.len() {
            return Err(SimError::Data(format!(
                "coordinate count {} != value count {}",
                coords.len(),
                values.len()
            )));
        }
        let mut peak = 0.0f64;
        for (i, v) in values.iter().enumerate() {
            if !v.is_finite() {
                return Err(SimError::Data(format!("non-finite value at sample {i}")));
            }
            peak = peak.max(v.re.abs()).max(v.im.abs());
        }
        for (i, c) in coords.iter().enumerate() {
            if c.iter().any(|x| !x.is_finite()) {
                return Err(SimError::Data(format!(
                    "non-finite coordinate at sample {i}"
                )));
            }
        }
        let scale = if peak == 0.0 {
            1.0
        } else {
            peak / (1.0 - Fx16::<15>::EPS)
        };
        let stream = coords
            .iter()
            .zip(values)
            .map(|(c, v)| FixedSample3d {
                coord: [
                    self.dec.quantize(c[0]),
                    self.dec.quantize(c[1]),
                    self.dec.quantize(c[2]),
                ],
                value: CFx16::from_c64(v.unscale(scale), self.cfg.round),
            })
            .collect();
        Ok((stream, scale))
    }

    /// Run the slice-serial 3-D gridding.
    ///
    /// `z_sorted = false` models the arbitrary-order stream (every slice
    /// sees all `M` samples: `(M + 15)·Nz` cycles); `z_sorted = true`
    /// models host-side Z-binning (each slice streams only the samples
    /// whose window touches it: `Σ_z(|bin_z| + 15)` cycles).
    pub fn run(&mut self, stream: &[FixedSample3d], z_sorted: bool) -> SimRun3d {
        let g = self.cfg.grid;
        let t = self.cfg.tile as u32;
        let w = self.cfg.width as u32;
        let _tiles = (g / self.cfg.tile) as u32;
        let m = stream.len() as u64;
        let nz = g as u64;
        let mut grid = vec![CFx32::<16>::ZERO; g * g * g];
        let mut ops = OpCounts::default();

        // Host-side Z bins (sorted mode): bin_z = samples whose z-window
        // covers slice z.
        let bins: Option<Vec<Vec<u32>>> = if z_sorted {
            let mut bins: Vec<Vec<u32>> = vec![Vec::new(); g];
            for (i, s) in stream.iter().enumerate() {
                let dz = self.dec.decompose(s.coord[0]);
                for j in 0..w {
                    let kz = (dz.base + g as u32 - j) % g as u32;
                    bins[kz as usize].push(i as u32);
                }
            }
            Some(bins)
        } else {
            None
        };

        let mut streamed: u64 = 0;
        for z in 0..g as u32 {
            let slice_base = z as usize * g * g;
            let indices: Box<dyn Iterator<Item = u32>> = match &bins {
                Some(b) => Box::new(b[z as usize].iter().copied()),
                None => Box::new(0..stream.len() as u32),
            };
            for i in indices {
                streamed += 1;
                let s = &stream[i as usize];
                let dz = self.dec.decompose(s.coord[0]);
                // Z select: forward torus distance from slice z to the
                // window base ("only the select stage processes all M
                // points for any individual slice").
                let dist_z = (dz.base + g as u32 - z) % g as u32;
                ops.select_checks += 1;
                if dist_z >= w {
                    continue;
                }
                let wz = self.lut.read(self.dec.lut_index(dist_z, dz.phi2));
                ops.lut_reads += 1;
                // 2-D Slice-and-Dice datapath within the slice.
                let dy = self.dec.decompose(s.coord[1]);
                let dx = self.dec.decompose(s.coord[2]);
                ops.select_checks += (t * t) as u64;
                let wide = CFx32::<16>::new(s.value.re.widen(), s.value.im.widen());
                for py in 0..t {
                    let dist_y = self.dec.forward_distance(dy.rel, py);
                    if dist_y >= w {
                        continue;
                    }
                    let ty = self.dec.tile_for_pipeline(&dy, py);
                    let wy = self.lut.read(self.dec.lut_index(dist_y, dy.phi2));
                    let wzy = wz.knuth_mul(wy, self.cfg.round);
                    for px in 0..t {
                        let dist_x = self.dec.forward_distance(dx.rel, px);
                        if dist_x >= w {
                            continue;
                        }
                        let tx = self.dec.tile_for_pipeline(&dx, px);
                        let wx = self.lut.read(self.dec.lut_index(dist_x, dx.phi2));
                        ops.lut_reads += 2;
                        let wzyx = wzy.knuth_mul(wx, self.cfg.round);
                        ops.weight_muls += 2;
                        let contrib = wide.knuth_mul_w(wzyx, self.cfg.round);
                        ops.interp_macs += 1;
                        let row = (ty * t + py) as usize;
                        let colp = (tx * t + px) as usize;
                        let addr = slice_base + row * g + colp;
                        let before = grid[addr];
                        let after = before.sat_add(contrib);
                        let wr = before.re.0 as i64 + contrib.re.0 as i64;
                        let wi = before.im.0 as i64 + contrib.im.0 as i64;
                        if wr != after.re.0 as i64 || wi != after.im.0 as i64 {
                            ops.saturations += 1;
                        }
                        grid[addr] = after;
                        ops.accum_rmw += 1;
                    }
                }
            }
        }
        let compute_cycles = match &bins {
            None => (m + PIPELINE_DEPTH_3D) * nz,
            Some(b) => b
                .iter()
                .map(|bin| bin.len() as u64 + PIPELINE_DEPTH_3D)
                .sum(),
        };
        let _ = streamed;
        SimRun3d {
            grid,
            report: SimReport {
                samples: m,
                compute_cycles,
                readout_cycles: (g * g * g) as u64 / 2,
                ops,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_core::gridding::{Gridder, SerialGridder};
    use jigsaw_core::lut::KernelLut;
    use jigsaw_core::metrics::rel_l2;

    fn cfg16() -> JigsawConfig {
        JigsawConfig::small(16)
    }

    fn sample_batch(m: usize, g: f64, seed: u64) -> (Vec<[f64; 3]>, Vec<C64>) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64
        };
        let coords = (0..m)
            .map(|_| [next() * g, next() * g, next() * g])
            .collect();
        let values = (0..m)
            .map(|_| C64::new(next() * 2.0 - 1.0, next() * 2.0 - 1.0))
            .collect();
        (coords, values)
    }

    #[test]
    fn unsorted_runtime_law() {
        let mut hw = Jigsaw3dSlice::new(cfg16()).unwrap();
        let (coords, values) = sample_batch(100, 16.0, 1);
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let run = hw.run(&stream, false);
        assert_eq!(run.report.compute_cycles, (100 + 15) * 16);
    }

    #[test]
    fn sorted_runtime_is_wz_fraction() {
        // Z-sorting reduces cycles from (M+15)·Nz to ≈ (M+15)·Wz.
        let mut hw = Jigsaw3dSlice::new(cfg16()).unwrap();
        let (coords, values) = sample_batch(500, 16.0, 2);
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let unsorted = hw.run(&stream, false).report.compute_cycles;
        let sorted = hw.run(&stream, true).report.compute_cycles;
        // Σ|bin_z| = M·Wz exactly (every sample lands in Wz bins).
        assert_eq!(sorted, 500 * 6 + 15 * 16);
        assert!(sorted < unsorted / 2, "{sorted} vs {unsorted}");
    }

    #[test]
    fn sorted_and_unsorted_grids_match() {
        let mut hw = Jigsaw3dSlice::new(cfg16()).unwrap();
        let (coords, values) = sample_batch(200, 16.0, 3);
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let a = hw.run(&stream, false);
        let b = hw.run(&stream, true);
        // Same per-point accumulation order (sample order within a slice
        // is preserved by the binning) → bitwise identical.
        assert_eq!(a.grid, b.grid);
    }

    #[test]
    fn matches_f64_reference() {
        let cfg = cfg16();
        let params = cfg.grid_params();
        let lut = KernelLut::from_params(&params);
        let (coords, values) = sample_batch(150, 16.0, 4);
        let mut hw = Jigsaw3dSlice::new(cfg).unwrap();
        let (stream, scale) = hw.quantize_inputs(&coords, &values).unwrap();
        let run = hw.run(&stream, false);
        let hw_grid = run.grid_c64(scale);
        let mut reference = vec![C64::zeroed(); 16 * 16 * 16];
        SerialGridder.grid(&params, &lut, &coords, &values, &mut reference);
        let err = rel_l2(&hw_grid, &reference);
        assert!(err < 5e-3, "3-D fixed-point error vs f64: {err}");
    }

    #[test]
    fn z_select_processes_all_m_per_slice_unsorted() {
        let mut hw = Jigsaw3dSlice::new(cfg16()).unwrap();
        let (coords, values) = sample_batch(50, 16.0, 5);
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let run = hw.run(&stream, false);
        // Select checks ≥ M·Nz (z-checks) — "only the select stage
        // processes all M points for any individual slice".
        assert!(run.report.ops.select_checks >= 50 * 16);
        // Each sample contributes exactly W³ MACs across all slices.
        assert_eq!(run.report.ops.interp_macs, 50 * 216);
    }
}
