//! The JIGSAW 2-D machine: `T² = 64` four-stage fixed-point pipelines.
//!
//! §IV: "Each pipeline is split into four stages: select, weight lookup,
//! interpolation, and accumulate." One non-uniform sample is broadcast to
//! all pipelines per cycle; with `W ≤ T` each pipeline is hit by at most
//! one point per sample, and each pipeline owns a private accumulation
//! SRAM, so nothing ever stalls: runtime is `M + 12` cycles.
//!
//! Two execution modes:
//!
//! * [`Jigsaw2d::run`] — *functional*: processes one sample at a time
//!   through the full fixed-point datapath. Timing comes from the
//!   stall-free pipeline law.
//! * [`Jigsaw2d::run_cycle_accurate`] — advances explicit per-stage
//!   pipeline registers every cycle (select at `+4`, weight lookup at
//!   `+6`, interpolation at `+9`, accumulate at `+12`), asserting the
//!   single-writer-per-cycle property. Tests verify it produces
//!   bit-identical grids and exactly `M + 12` cycles — the law is
//!   *derived*, not assumed.

use crate::config::{JigsawConfig, CLOCK_HZ, OUTPUT_POINTS_PER_CYCLE, PIPELINE_DEPTH_2D};
use crate::hwlut::HwLut;
use crate::{Result, SimError};
use jigsaw_core::decomp::Decomposer;
use jigsaw_fixed::{CFx16, CFx32, Fx16};
use jigsaw_num::C64;
use std::collections::VecDeque;

/// One quantized input sample as it crosses the 128-bit DMA bus:
/// two 32-bit coordinates (units of `1/L`, torus `[0, G·L)`) and one
/// 32-bit complex value (16-bit Q1.15 components).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedSample2d {
    /// Quantized `[row, col]` coordinate.
    pub coord: [u32; 2],
    /// Complex sample value.
    pub value: CFx16<15>,
}

/// Operation counters for energy accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Select-unit boundary checks (one per pipeline per sample).
    pub select_checks: u64,
    /// Weight-SRAM reads.
    pub lut_reads: u64,
    /// Complex weight-combine multiplies (weight-lookup stage).
    pub weight_muls: u64,
    /// Interpolation MACs (weight × sample products).
    pub interp_macs: u64,
    /// Accumulator SRAM read-modify-writes.
    pub accum_rmw: u64,
    /// Saturating-add clamp events (overflow diagnostics).
    pub saturations: u64,
}

/// Timing + instrumentation of one accelerator run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimReport {
    /// Samples streamed.
    pub samples: u64,
    /// Compute cycles (stream + pipeline drain).
    pub compute_cycles: u64,
    /// Cycles to stream the result grid back over the bus.
    pub readout_cycles: u64,
    /// Operation counters.
    pub ops: OpCounts,
}

impl SimReport {
    /// Gridding wall-clock at the synthesized 1.0 GHz clock (excludes
    /// readout, matching the paper's `M + 12` ns quote).
    pub fn gridding_seconds(&self) -> f64 {
        self.compute_cycles as f64 / CLOCK_HZ
    }

    /// Wall-clock including result readout.
    pub fn total_seconds(&self) -> f64 {
        (self.compute_cycles + self.readout_cycles) as f64 / CLOCK_HZ
    }
}

/// Output of a run: the fixed-point target grid plus the report.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Row-major `G × G` grid in the accumulator format.
    pub grid: Vec<CFx32<16>>,
    /// Timing and counters.
    pub report: SimReport,
}

impl SimRun {
    /// Convert the grid to `f64`, undoing the input normalization scale.
    pub fn grid_c64(&self, value_scale: f64) -> Vec<C64> {
        self.grid
            .iter()
            .map(|z| z.to_c64().scale(value_scale))
            .collect()
    }
}

/// In-flight pipeline context (cycle-accurate mode).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    issue_cycle: u64,
    sample: FixedSample2d,
    // Stage outputs, filled as the sample advances.
    sel: Option<SelectOut>,
    weight: Option<[[CFx16<15>; 8]; 2]>, // per-dim per-distance weights
    product: Option<[[CFx32<16>; 8]; 8]>, // per (py-dist, px-dist) value
}

/// Select-stage output: per-dimension decomposition.
#[derive(Debug, Clone, Copy)]
struct SelectOut {
    rel: [u32; 2],
    tile: [u32; 2],
    phi2: [u32; 2],
}

/// The 2-D accelerator instance.
///
/// ```
/// use jigsaw_sim::{Jigsaw2d, JigsawConfig};
/// use jigsaw_num::C64;
///
/// let mut hw = Jigsaw2d::new(JigsawConfig::small(64)).unwrap();
/// let coords = vec![[10.0, 20.0], [33.3, 1.2]];
/// let values = vec![C64::one(), C64::new(0.0, -0.5)];
/// let (stream, scale) = hw.quantize_inputs(&coords, &values).unwrap();
/// let run = hw.run(&stream);
/// assert_eq!(run.report.compute_cycles, 2 + 12); // M + 12 cycles
/// let grid = run.grid_c64(scale);                // f64 view of the grid
/// assert_eq!(grid.len(), 64 * 64);
/// ```
pub struct Jigsaw2d {
    cfg: JigsawConfig,
    dec: Decomposer,
    lut: HwLut,
    /// Per-pipeline accumulation SRAM, one dice column each
    /// (`pipelines[py·T + px][tile_y·tiles + tile_x]`).
    accum: Vec<Vec<CFx32<16>>>,
    ops: OpCounts,
}

impl Jigsaw2d {
    /// Instantiate the accelerator for a validated configuration.
    pub fn new(cfg: JigsawConfig) -> Result<Self> {
        cfg.validate()?;
        let params = cfg.grid_params();
        let dec = Decomposer::new(&params);
        let lut = HwLut::build(&cfg);
        let tiles = cfg.grid / cfg.tile;
        let accum = vec![vec![CFx32::ZERO; tiles * tiles]; cfg.tile * cfg.tile];
        Ok(Self {
            cfg,
            dec,
            lut,
            accum,
            ops: OpCounts::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &JigsawConfig {
        &self.cfg
    }

    /// Quantize host-side samples for the DMA stream: coordinates in
    /// oversampled-grid units are rounded to `1/L` granularity; values are
    /// normalized by `scale = max component magnitude` into Q1.15.
    /// Returns the stream and the scale to undo after readout.
    pub fn quantize_inputs(
        &self,
        coords: &[[f64; 2]],
        values: &[C64],
    ) -> Result<(Vec<FixedSample2d>, f64)> {
        if coords.len() != values.len() {
            return Err(SimError::Data(format!(
                "coordinate count {} != value count {}",
                coords.len(),
                values.len()
            )));
        }
        let mut peak = 0.0f64;
        for (i, v) in values.iter().enumerate() {
            if !v.is_finite() {
                return Err(SimError::Data(format!("non-finite value at sample {i}")));
            }
            peak = peak.max(v.re.abs()).max(v.im.abs());
        }
        for (i, c) in coords.iter().enumerate() {
            if !c[0].is_finite() || !c[1].is_finite() {
                return Err(SimError::Data(format!(
                    "non-finite coordinate at sample {i}"
                )));
            }
        }
        let scale = if peak == 0.0 {
            1.0
        } else {
            peak / (1.0 - Fx16::<15>::EPS)
        };
        let stream = coords
            .iter()
            .zip(values)
            .map(|(c, v)| FixedSample2d {
                coord: [self.dec.quantize(c[0]), self.dec.quantize(c[1])],
                value: CFx16::from_c64(v.unscale(scale), self.cfg.round),
            })
            .collect();
        Ok((stream, scale))
    }

    /// Clear the accumulation SRAMs and counters (between runs).
    pub fn reset(&mut self) {
        for col in &mut self.accum {
            col.fill(CFx32::ZERO);
        }
        self.ops = OpCounts::default();
        self.lut.reset_counters();
    }

    /// Process one sample through the full fixed-point datapath,
    /// committing its accumulator updates. Shared by both run modes.
    fn commit_sample(&mut self, s: &FixedSample2d) {
        let t = self.cfg.tile as u32;
        let w = self.cfg.width as u32;
        let tiles = (self.cfg.grid / self.cfg.tile) as u32;
        let dy = self.dec.decompose(s.coord[0]);
        let dx = self.dec.decompose(s.coord[1]);
        // Every pipeline performs the select check (broadcast).
        self.ops.select_checks += (t * t) as u64;
        // Widen the sample once (input register).
        let wide = CFx32::<16>::new(s.value.re.widen(), s.value.im.widen());
        for py in 0..t {
            let dist_y = self.dec.forward_distance(dy.rel, py);
            if dist_y >= w {
                continue;
            }
            let ty = self.dec.tile_for_pipeline(&dy, py);
            let wy = self.lut.read(self.dec.lut_index(dist_y, dy.phi2));
            for px in 0..t {
                let dist_x = self.dec.forward_distance(dx.rel, px);
                if dist_x >= w {
                    continue;
                }
                let tx = self.dec.tile_for_pipeline(&dx, px);
                let wx = self.lut.read(self.dec.lut_index(dist_x, dx.phi2));
                self.ops.lut_reads += 2;
                // Weight lookup stage: combine per-dim complex weights.
                let wxy = wy.knuth_mul(wx, self.cfg.round);
                self.ops.weight_muls += 1;
                // Interpolation stage: weight × sample.
                let contrib = wide.knuth_mul_w(wxy, self.cfg.round);
                self.ops.interp_macs += 1;
                // Accumulate stage: read-modify-write the column SRAM.
                let col = (py * t + px) as usize;
                let addr = (ty * tiles + tx) as usize;
                let before = self.accum[col][addr];
                let after = before.sat_add(contrib);
                // Detect clamping (either component).
                let wide_re = before.re.0 as i64 + contrib.re.0 as i64;
                let wide_im = before.im.0 as i64 + contrib.im.0 as i64;
                if wide_re != after.re.0 as i64 || wide_im != after.im.0 as i64 {
                    self.ops.saturations += 1;
                }
                self.accum[col][addr] = after;
                self.ops.accum_rmw += 1;
            }
        }
    }

    /// Functional run: stream every sample through the datapath; timing
    /// from the stall-free pipeline law (`M + 12` compute cycles).
    pub fn run(&mut self, stream: &[FixedSample2d]) -> SimRun {
        self.reset();
        for s in stream {
            self.commit_sample(s);
        }
        self.finish(stream.len() as u64, stream.len() as u64 + PIPELINE_DEPTH_2D)
    }

    /// Cycle-accurate run: per-cycle advance of the four stage registers
    /// (select ends at issue+4, weight lookup +6, interpolation +9,
    /// accumulate +12). Asserts the in-flight window never exceeds the
    /// pipeline depth. Returns the same grid as [`Jigsaw2d::run`], with
    /// the cycle count *measured* by the simulation loop.
    pub fn run_cycle_accurate(&mut self, stream: &[FixedSample2d]) -> SimRun {
        self.reset();
        let m = stream.len() as u64;
        let mut inflight: VecDeque<InFlight> = VecDeque::new();
        let mut cycle: u64 = 0;
        let mut next_issue: u64 = 0;
        let mut committed: u64 = 0;
        let t = self.cfg.tile as u32;
        let w = self.cfg.width as u32;
        while committed < m || next_issue < m {
            // Issue: one sample enters the pipeline per cycle.
            if next_issue < m {
                inflight.push_back(InFlight {
                    issue_cycle: cycle,
                    sample: stream[next_issue as usize],
                    sel: None,
                    weight: None,
                    product: None,
                });
                next_issue += 1;
            }
            assert!(
                inflight.len() as u64 <= PIPELINE_DEPTH_2D + 1,
                "in-flight window exceeded pipeline depth"
            );
            // Advance stages.
            let mut retire = 0;
            for fl in inflight.iter_mut() {
                let age = cycle - fl.issue_cycle;
                if age == 4 && fl.sel.is_none() {
                    // Select stage completes.
                    let dy = self.dec.decompose(fl.sample.coord[0]);
                    let dx = self.dec.decompose(fl.sample.coord[1]);
                    fl.sel = Some(SelectOut {
                        rel: [dy.rel, dx.rel],
                        tile: [dy.tile, dx.tile],
                        phi2: [dy.phi2, dx.phi2],
                    });
                } else if age == 6 && fl.weight.is_none() {
                    // Weight lookup: read the per-dimension weights for
                    // every forward distance < W.
                    let sel = fl.sel.expect("select must complete first");
                    let mut weights = [[CFx16::ZERO; 8]; 2];
                    for (d, wrow) in weights.iter_mut().enumerate() {
                        for dist in 0..w.min(8) {
                            wrow[dist as usize] =
                                self.lut.read(self.dec.lut_index(dist, sel.phi2[d]));
                        }
                    }
                    fl.weight = Some(weights);
                } else if age == 9 && fl.product.is_none() {
                    // Interpolation: weight-combine + sample product for
                    // each (dy, dx) pair in the window.
                    let weights = fl.weight.expect("weights must be ready");
                    let wide =
                        CFx32::<16>::new(fl.sample.value.re.widen(), fl.sample.value.im.widen());
                    let mut prod = [[CFx32::ZERO; 8]; 8];
                    for jy in 0..w.min(8) as usize {
                        for jx in 0..w.min(8) as usize {
                            let wxy = weights[0][jy].knuth_mul(weights[1][jx], self.cfg.round);
                            prod[jy][jx] = wide.knuth_mul_w(wxy, self.cfg.round);
                        }
                    }
                    fl.product = Some(prod);
                } else if age == PIPELINE_DEPTH_2D {
                    retire += 1;
                }
            }
            // Retire (accumulate stage) — at most one sample per cycle.
            assert!(retire <= 1, "only one sample may retire per cycle");
            if retire == 1 {
                let fl = inflight.pop_front().expect("in-flight sample");
                debug_assert_eq!(cycle - fl.issue_cycle, PIPELINE_DEPTH_2D);
                self.commit_retired(&fl, t, w);
                committed += 1;
            }
            cycle += 1;
        }
        // The last retire happened at `cycle − 1 + 1`; total elapsed cycles:
        let compute_cycles = cycle;
        self.finish(m, compute_cycles)
    }

    /// Accumulate a retired sample's precomputed products.
    fn commit_retired(&mut self, fl: &InFlight, t: u32, w: u32) {
        let sel = fl.sel.expect("select output");
        let prod = fl.product.expect("interpolation output");
        let tiles = (self.cfg.grid / self.cfg.tile) as u32;
        self.ops.select_checks += (t * t) as u64;
        for py in 0..t {
            let dist_y = self.dec.forward_distance(sel.rel[0], py);
            if dist_y >= w {
                continue;
            }
            for px in 0..t {
                let dist_x = self.dec.forward_distance(sel.rel[1], px);
                if dist_x >= w {
                    continue;
                }
                self.ops.lut_reads += 2;
                self.ops.weight_muls += 1;
                self.ops.interp_macs += 1;
                let ty = wrap_tile(sel.tile[0], sel.rel[0], py, tiles);
                let tx = wrap_tile(sel.tile[1], sel.rel[1], px, tiles);
                let col = (py * t + px) as usize;
                let addr = (ty * tiles + tx) as usize;
                let before = self.accum[col][addr];
                let contrib = prod[dist_y as usize][dist_x as usize];
                let after = before.sat_add(contrib);
                let wide_re = before.re.0 as i64 + contrib.re.0 as i64;
                let wide_im = before.im.0 as i64 + contrib.im.0 as i64;
                if wide_re != after.re.0 as i64 || wide_im != after.im.0 as i64 {
                    self.ops.saturations += 1;
                }
                self.accum[col][addr] = after;
                self.ops.accum_rmw += 1;
            }
        }
    }

    /// Assemble the row-major grid and the report.
    fn finish(&mut self, samples: u64, compute_cycles: u64) -> SimRun {
        let g = self.cfg.grid;
        let t = self.cfg.tile;
        let tiles = g / t;
        let mut grid = vec![CFx32::ZERO; g * g];
        for py in 0..t {
            for px in 0..t {
                let col = &self.accum[py * t + px];
                for ty in 0..tiles {
                    for tx in 0..tiles {
                        grid[(ty * t + py) * g + tx * t + px] = col[ty * tiles + tx];
                    }
                }
            }
        }
        let ops = self.ops;
        SimRun {
            grid,
            report: SimReport {
                samples,
                compute_cycles,
                readout_cycles: (g * g) as u64 / OUTPUT_POINTS_PER_CYCLE,
                ops,
            },
        }
    }
}

impl SimRun {
    /// Serialize the result grid as the device-to-host DMA stream: one
    /// 128-bit bus beat per two 64-bit complex points, row-major tile
    /// order (§IV System Integration: "the host then initiates a second
    /// stream, which transfers the gridded data from JIGSAW to the host
    /// memory"). The beat count equals [`SimReport::readout_cycles`].
    pub fn dma_readout(&self) -> Vec<u128> {
        self.grid
            .chunks(2)
            .map(|pair| {
                let lo = pack_point(&pair[0]);
                let hi = pair.get(1).map(pack_point).unwrap_or(0);
                (hi as u128) << 64 | lo as u128
            })
            .collect()
    }
}

/// Pack one accumulator point into a 64-bit bus word (re high, im low).
fn pack_point(p: &CFx32<16>) -> u64 {
    ((p.re.0 as u32 as u64) << 32) | (p.im.0 as u32 as u64)
}

/// Parse a device-to-host DMA stream back into accumulator points — the
/// host-side driver's job; used by tests to verify the bus round trip.
pub fn parse_dma_readout(beats: &[u128], points: usize) -> Vec<CFx32<16>> {
    let mut out = Vec::with_capacity(points);
    for beat in beats {
        for half in [*beat as u64, (*beat >> 64) as u64] {
            if out.len() == points {
                break;
            }
            out.push(CFx32::new(
                jigsaw_fixed::Fx32::from_bits((half >> 32) as u32 as i32),
                jigsaw_fixed::Fx32::from_bits(half as u32 as i32),
            ));
        }
    }
    out
}

/// Tile coordinate after wrap compensation (shared with the fast path via
/// `Decomposer::tile_for_pipeline`; duplicated here in the form the
/// retire stage uses so the cycle-accurate path only consumes stage
/// registers).
#[inline]
fn wrap_tile(tile: u32, rel: u32, p: u32, tiles: u32) -> u32 {
    if rel < p {
        (tile + tiles - 1) % tiles
    } else {
        tile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_core::gridding::{Gridder, SerialGridder};
    use jigsaw_core::lut::KernelLut;
    use jigsaw_core::metrics::rel_l2;

    fn sample_batch(m: usize, g: f64, seed: u64) -> (Vec<[f64; 2]>, Vec<C64>) {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s as f64 / u64::MAX as f64
        };
        let coords = (0..m).map(|_| [next() * g, next() * g]).collect();
        let values = (0..m)
            .map(|_| C64::new(next() * 2.0 - 1.0, next() * 2.0 - 1.0))
            .collect();
        (coords, values)
    }

    #[test]
    fn runtime_law_m_plus_12() {
        let mut hw = Jigsaw2d::new(JigsawConfig::small(64)).unwrap();
        for m in [1usize, 10, 100, 1000] {
            let (coords, values) = sample_batch(m, 64.0, m as u64);
            let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
            let run = hw.run(&stream);
            assert_eq!(run.report.compute_cycles, m as u64 + 12);
        }
    }

    #[test]
    fn cycle_accurate_derives_same_law_and_same_grid() {
        let mut hw = Jigsaw2d::new(JigsawConfig::small(64)).unwrap();
        let (coords, values) = sample_batch(200, 64.0, 7);
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let fast = hw.run(&stream);
        let slow = hw.run_cycle_accurate(&stream);
        assert_eq!(slow.report.compute_cycles, 200 + 12);
        assert_eq!(fast.report.compute_cycles, slow.report.compute_cycles);
        assert_eq!(fast.grid, slow.grid, "functional and cycle-accurate differ");
        assert_eq!(fast.report.ops.interp_macs, slow.report.ops.interp_macs);
        assert_eq!(fast.report.ops.accum_rmw, slow.report.ops.accum_rmw);
    }

    #[test]
    fn runtime_independent_of_sampling_pattern() {
        // Clustered vs uniform vs identical coordinates: same cycle count
        // (the paper's headline property: trajectory-agnostic timing).
        let mut hw = Jigsaw2d::new(JigsawConfig::small(64)).unwrap();
        let m = 500;
        let (uniform, values) = sample_batch(m, 64.0, 1);
        let clustered: Vec<[f64; 2]> = (0..m).map(|i| [1.0 + (i % 3) as f64 * 0.1, 2.0]).collect();
        let (s1, _) = hw.quantize_inputs(&uniform, &values).unwrap();
        let c1 = hw.run(&s1).report.compute_cycles;
        let (s2, _) = hw.quantize_inputs(&clustered, &values).unwrap();
        let c2 = hw.run(&s2).report.compute_cycles;
        assert_eq!(c1, c2);
    }

    #[test]
    fn matches_f64_reference_within_fixed_point_error() {
        // Functional verification "against MIRT's output using doubles"
        // (§V): the fixed-point grid must track the f64 LUT grid to within
        // accumulated quantization error.
        let cfg = JigsawConfig::small(64);
        let params = cfg.grid_params();
        let lut = KernelLut::from_params(&params);
        let (coords, values) = sample_batch(400, 64.0, 3);
        let mut hw = Jigsaw2d::new(cfg).unwrap();
        let (stream, scale) = hw.quantize_inputs(&coords, &values).unwrap();
        let run = hw.run(&stream);
        let hw_grid = run.grid_c64(scale);
        let mut reference = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&params, &lut, &coords, &values, &mut reference);
        let err = rel_l2(&hw_grid, &reference);
        assert!(err < 2e-3, "fixed-point grid error vs f64: {err}");
        assert_eq!(run.report.ops.saturations, 0);
    }

    #[test]
    fn op_counts_match_model() {
        let mut hw = Jigsaw2d::new(JigsawConfig::small(64)).unwrap();
        let (coords, values) = sample_batch(50, 64.0, 4);
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let run = hw.run(&stream);
        let ops = run.report.ops;
        assert_eq!(ops.select_checks, 50 * 64); // M·T²
        assert_eq!(ops.interp_macs, 50 * 36); // M·W²
        assert_eq!(ops.accum_rmw, 50 * 36);
        assert_eq!(ops.weight_muls, 50 * 36);
        assert_eq!(run.report.readout_cycles, 64 * 64 / 2);
    }

    #[test]
    fn saturation_is_detected() {
        // Stream the same max-magnitude sample many times onto one point:
        // Q15.16 accumulators clamp near ±32768.
        let mut hw = Jigsaw2d::new(JigsawConfig::small(64)).unwrap();
        let coords = vec![[10.0, 10.0]; 40000];
        let values = vec![C64::new(1.0, 0.0); 40000];
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let run = hw.run(&stream);
        assert!(
            run.report.ops.saturations > 0,
            "expected accumulator clamping"
        );
    }

    #[test]
    fn truncation_rounding_degrades_accuracy() {
        // Round-to-nearest must beat truncation — the ablation behind the
        // hardware's add-half rounder.
        let (coords, values) = sample_batch(300, 64.0, 12);
        let params = JigsawConfig::small(64).grid_params();
        let lut = KernelLut::from_params(&params);
        let mut reference = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&params, &lut, &coords, &values, &mut reference);
        let mut errs = Vec::new();
        for round in [jigsaw_fixed::Round::Nearest, jigsaw_fixed::Round::Truncate] {
            let mut cfg = JigsawConfig::small(64);
            cfg.round = round;
            let mut hw = Jigsaw2d::new(cfg).unwrap();
            let (stream, scale) = hw.quantize_inputs(&coords, &values).unwrap();
            let run = hw.run(&stream);
            errs.push(rel_l2(&run.grid_c64(scale), &reference));
        }
        assert!(
            errs[0] < errs[1],
            "nearest {} must beat truncate {}",
            errs[0],
            errs[1]
        );
    }

    #[test]
    fn quantize_rejects_bad_input() {
        let hw = Jigsaw2d::new(JigsawConfig::small(64)).unwrap();
        assert!(hw.quantize_inputs(&[[0.0, 0.0]], &[]).is_err());
        assert!(hw
            .quantize_inputs(&[[f64::NAN, 0.0]], &[C64::one()])
            .is_err());
        assert!(hw
            .quantize_inputs(&[[0.0, 0.0]], &[C64::new(f64::INFINITY, 0.0)])
            .is_err());
    }

    #[test]
    fn dma_readout_round_trips_and_matches_cycle_count() {
        let mut hw = Jigsaw2d::new(JigsawConfig::small(64)).unwrap();
        let (coords, values) = sample_batch(120, 64.0, 21);
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let run = hw.run(&stream);
        let beats = run.dma_readout();
        // One beat per two points = the modeled readout cycles.
        assert_eq!(beats.len() as u64, run.report.readout_cycles);
        // Host-side parse recovers the grid bit-exactly.
        let parsed = crate::machine::parse_dma_readout(&beats, run.grid.len());
        assert_eq!(parsed, run.grid);
    }

    #[test]
    fn zero_values_produce_zero_grid() {
        let mut hw = Jigsaw2d::new(JigsawConfig::small(64)).unwrap();
        let (stream, scale) = hw.quantize_inputs(&[[5.0, 5.0]], &[C64::zeroed()]).unwrap();
        assert_eq!(scale, 1.0);
        let run = hw.run(&stream);
        assert!(run.grid.iter().all(|z| *z == CFx32::ZERO));
    }

    #[test]
    fn wrap_handling_matches_reference() {
        // Edge samples (Fig. 2's a, c, f) exercise the wrap compensation.
        let cfg = JigsawConfig::small(64);
        let params = cfg.grid_params();
        let lut = KernelLut::from_params(&params);
        let coords = vec![[0.1, 0.1], [63.7, 0.3], [0.2, 63.9], [63.5, 63.5]];
        let values = vec![C64::new(1.0, -0.5); 4];
        let mut hw = Jigsaw2d::new(cfg).unwrap();
        let (stream, scale) = hw.quantize_inputs(&coords, &values).unwrap();
        let hw_grid = hw.run(&stream).grid_c64(scale);
        let mut reference = vec![C64::zeroed(); 64 * 64];
        SerialGridder.grid(&params, &lut, &coords, &values, &mut reference);
        let err = rel_l2(&hw_grid, &reference);
        assert!(err < 2e-3, "wrap error {err}");
    }
}
