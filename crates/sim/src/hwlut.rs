//! Hardware interpolation-weight LUT (the per-pipeline weight SRAM).
//!
//! §IV "Weight Lookup": each unit holds a dual-ported SRAM of up to 256
//! 32-bit complex weights — 16 bits per real/imaginary component — storing
//! only half the (symmetric) window. Real-valued kernels (every kernel in
//! this workspace) leave the imaginary half zero, but the datapath carries
//! it, exactly as the silicon would.

use crate::config::JigsawConfig;
use jigsaw_fixed::{CFx16, Fx16};
use jigsaw_num::C64;
use std::cell::Cell;

/// Quantized weight table plus SRAM access accounting.
#[derive(Debug, Clone)]
pub struct HwLut {
    wl: u32,
    /// Packed 32-bit SRAM words (16-bit re, 16-bit im).
    words: Vec<u32>,
    reads: Cell<u64>,
}

impl HwLut {
    /// Build from a configuration: evaluate the kernel in `f64`, quantize
    /// each weight to Q1.15, and pack into SRAM words.
    ///
    /// Weights are scaled by `(1 − 2⁻¹⁵)` before quantization so the peak
    /// weight 1.0 fits the Q1.15 range (the hardware equivalent: weights
    /// normalized to the format's max representable value).
    pub fn build(cfg: &JigsawConfig) -> Self {
        let w = cfg.width;
        let l = cfg.table_oversampling;
        let wl = (w * l) as u32;
        let scale = 1.0 - Fx16::<15>::EPS;
        let words = (0..=wl / 2)
            .map(|s| {
                let delta = s as f64 / l as f64 - w as f64 / 2.0;
                let weight = cfg.kernel.eval(delta, w) * scale;
                CFx16::<15>::from_c64(C64::new(weight, 0.0), cfg.round).pack()
            })
            .collect();
        Self {
            wl,
            words,
            reads: Cell::new(0),
        }
    }

    /// Number of stored SRAM words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the table is empty (never for valid configs).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Look up by *unfolded* index `t ∈ [0, WL]`; the fold
    /// `min(t, WL − t)` is a mux on the SRAM address lines.
    #[inline]
    pub fn read(&self, t: u32) -> CFx16<15> {
        debug_assert!(t <= self.wl);
        self.reads.set(self.reads.get() + 1);
        let folded = t.min(self.wl - t) as usize;
        CFx16::unpack(self.words[folded])
    }

    /// Total SRAM reads performed (energy accounting).
    pub fn read_count(&self) -> u64 {
        self.reads.get()
    }

    /// Reset the access counter.
    pub fn reset_counters(&self) {
        self.reads.set(0);
    }

    /// The worst-case quantization error of the stored weights vs the
    /// `f64` kernel (should be ≤ half an LSB of Q1.15 plus the 1−2⁻¹⁵
    /// rescale).
    pub fn quantization_error(&self, cfg: &JigsawConfig) -> f64 {
        let l = cfg.table_oversampling as f64;
        let w = cfg.width;
        (0..self.words.len())
            .map(|s| {
                let delta = s as f64 / l - w as f64 / 2.0;
                let exact = cfg.kernel.eval(delta, w);
                (CFx16::<15>::unpack(self.words[s]).to_c64().re - exact).abs()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_fits_256_word_sram() {
        let mut cfg = JigsawConfig::paper_default();
        cfg.width = 8;
        cfg.table_oversampling = 64;
        let lut = HwLut::build(&cfg);
        assert!(lut.len() <= 257);
    }

    #[test]
    fn weights_quantized_within_lsb() {
        let cfg = JigsawConfig::paper_default();
        let lut = HwLut::build(&cfg);
        // Error ≤ rescale loss (≤ EPS) + rounding (≤ EPS/2).
        assert!(lut.quantization_error(&cfg) <= 1.6 * Fx16::<15>::EPS);
    }

    #[test]
    fn folded_reads_are_symmetric() {
        let cfg = JigsawConfig::small(64);
        let lut = HwLut::build(&cfg);
        let wl = (cfg.width * cfg.table_oversampling) as u32;
        for t in 0..=wl {
            assert_eq!(lut.read(t), lut.read(wl - t));
        }
    }

    #[test]
    fn peak_weight_is_format_max() {
        let cfg = JigsawConfig::paper_default();
        let lut = HwLut::build(&cfg);
        let wl = (cfg.width * cfg.table_oversampling) as u32;
        let peak = lut.read(wl / 2);
        assert_eq!(peak.re, Fx16::<15>::MAX);
        assert_eq!(peak.im, Fx16::<15>::ZERO);
    }

    #[test]
    fn read_counter_accumulates() {
        let cfg = JigsawConfig::small(64);
        let lut = HwLut::build(&cfg);
        lut.reset_counters();
        for t in 0..10 {
            lut.read(t);
        }
        assert_eq!(lut.read_count(), 10);
        lut.reset_counters();
        assert_eq!(lut.read_count(), 0);
    }
}
