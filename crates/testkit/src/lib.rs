//! # jigsaw-testkit — self-contained randomized-test harness
//!
//! The workspace builds in hermetic environments with no registry access,
//! so third-party crates (`proptest`, `rand`, `criterion`) are off the
//! table. This crate provides the two pieces the test suite actually
//! needs, with zero dependencies:
//!
//! * [`Rng`] — a small, fast, *deterministic* PRNG (xoshiro256**), seeded
//!   explicitly so every failure is reproducible from the printed seed.
//! * [`run_cases`] / [`cases`] — a property-test driver: run a closure
//!   over `n` independently-seeded cases and, if one panics, re-raise the
//!   panic annotated with the case index and seed so the exact failing
//!   input can be replayed with [`Rng::new`].
//! * [`fault`] / [`faultpoint!`](crate::faultpoint) — deterministic,
//!   zero-cost-when-disarmed fault injection for chaos testing the
//!   execution engine's panic containment and graceful degradation.
//! * [`cancel`] — cooperative cancellation checkpoints polled by the
//!   gridding/FFT hot loops (one relaxed load when no scope is live),
//!   shared here because both `jigsaw-fft` and `jigsaw-core` sit above
//!   this crate.
//!
//! The style mirrors `proptest!` loosely: generators are just methods on
//! [`Rng`], properties are ordinary `assert!`s.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cancel;
pub mod fault;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Deterministic xoshiro256** PRNG.
///
/// Not cryptographic; plenty for test-input generation. Passes through a
/// SplitMix64 seed expansion so nearby seeds give uncorrelated streams.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion (Vigna's reference initialization).
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value (xoshiro256**).
    #[inline]
    pub fn u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value.
    #[inline]
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (self.u64() % (hi - lo) as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    #[inline]
    pub fn i64_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (self.u64() % (hi - lo) as u64) as i64
    }

    /// Uniformly choose one element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_range(0, items.len())]
    }

    /// A boolean with probability `p` of being `true`.
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A vector of `n` items drawn from `gen`.
    pub fn vec<T>(&mut self, n: usize, mut gen: impl FnMut(&mut Self) -> T) -> Vec<T> {
        (0..n).map(|_| gen(self)).collect()
    }
}

/// Derive the per-case seed used by [`run_cases`] for case `i` of a
/// property named `name`. Exposed so failures can be replayed directly.
pub fn case_seed(name: &str, i: usize) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

/// Run `n` independently-seeded cases of a property.
///
/// On panic, the panic is re-raised after printing the property name, the
/// failing case index, and the seed (pass it to [`Rng::new`] to replay).
pub fn run_cases(name: &str, n: usize, mut property: impl FnMut(&mut Rng)) {
    for i in 0..n {
        let seed = case_seed(name, i);
        let mut rng = Rng::new(seed);
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(e) = result {
            eprintln!("property `{name}` failed at case {i}/{n} (replay with Rng::new({seed:#x}))");
            resume_unwind(e);
        }
    }
}

/// Shorthand for [`run_cases`] with the enclosing function's name supplied
/// explicitly: `cases!(64, |rng| { ... })` inside `fn my_prop()` runs 64
/// cases named after the file/line.
#[macro_export]
macro_rules! cases {
    ($n:expr, $body:expr) => {
        $crate::run_cases(concat!(file!(), ":", line!()), $n, $body)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let x = r.usize_range(3, 17);
            assert!((3..17).contains(&x));
            let y = r.f64_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&y));
            let z = r.i64_range(-5, 5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn run_cases_covers_all_indices() {
        let mut seen = 0usize;
        run_cases("cover", 25, |_| seen += 1);
        assert_eq!(seen, 25);
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of 100k uniform draws is 0.5 within ~1%.
        let mut r = Rng::new(1234);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
