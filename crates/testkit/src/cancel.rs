//! Cooperative cancellation checkpoints for hot loops.
//!
//! A long NuFFT/gridding pass must be stoppable *mid-flight* — a serve
//! job whose deadline was blown (or whose client gave up) should stop
//! within one chunk of work, not one CG iteration. This module provides
//! the primitive both `jigsaw-fft` and `jigsaw-core` poll, with the
//! same cost discipline as [`crate::fault`]'s `faultpoint!`:
//!
//! * [`CancelFlag`] — an `Arc`-shared latch. The owner (a run budget, a
//!   watchdog) calls [`CancelFlag::cancel`]; workers only ever read it.
//! * [`CancelScope`] — an RAII guard installing a flag as the calling
//!   thread's *current* cancellation context. Dispatch layers capture
//!   [`current`] on the submitting thread and re-enter the scope inside
//!   each worker-job closure, exactly like request-id tracing.
//! * [`cancelled`] — the checkpoint. When **no** scope is live anywhere
//!   in the process (every non-serving workload), it is one relaxed
//!   atomic load and a predicted branch. With a scope installed it adds
//!   a thread-local read and one more relaxed load per call — still
//!   nanoseconds against a multi-microsecond chunk of gridding.
//!
//! Checkpoints must **never panic**: a panicking pooled job triggers
//! the engine's bitwise-identical serial *retry*, which would defeat
//! cancellation. Hot loops instead `return` early, leaving partially
//! written scratch that the budget's owner discards after observing the
//! cancellation. Non-cancelled runs are untouched — the checkpoint is
//! read-only — so bitwise-identity guarantees are preserved.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of live [`CancelScope`]s process-wide. The fast-path gate:
/// zero means no thread can possibly observe a cancellation, so
/// [`cancelled`] returns after one relaxed load.
static ACTIVE_SCOPES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The calling thread's current cancellation flag, if any.
    static CURRENT: RefCell<Option<Arc<CancelFlag>>> = const { RefCell::new(None) };
}

/// A shared one-way cancellation latch. Cloning the `Arc` shares the
/// latch; once cancelled it stays cancelled.
#[derive(Debug, Default)]
pub struct CancelFlag {
    cancelled: AtomicBool,
}

impl CancelFlag {
    /// A fresh, un-cancelled flag.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Latch the flag. Idempotent; visible to every holder.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`Self::cancel`] has been called.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// RAII guard installing `flag` as the calling thread's cancellation
/// context for [`cancelled`] checkpoints. Restores the previous context
/// (scopes nest) on drop.
pub struct CancelScope {
    prev: Option<Arc<CancelFlag>>,
    installed: bool,
}

impl CancelScope {
    /// Enter a scope. `None` installs "no context" (checkpoints see no
    /// flag), which still restores the outer context on drop — dispatch
    /// layers pass [`current`]'s capture through verbatim, so a worker
    /// thread ends up with exactly the submitting thread's context.
    pub fn enter(flag: Option<Arc<CancelFlag>>) -> Self {
        let installed = flag.is_some();
        if installed {
            ACTIVE_SCOPES.fetch_add(1, Ordering::Relaxed);
        }
        let prev = CURRENT.with(|c| c.replace(flag));
        Self { prev, installed }
    }
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.replace(self.prev.take()));
        if self.installed {
            ACTIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// The calling thread's current cancellation flag, for re-entry on a
/// worker thread (capture on the dispatching thread, pass into the job
/// closure, [`CancelScope::enter`] inside it).
pub fn current() -> Option<Arc<CancelFlag>> {
    if ACTIVE_SCOPES.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// The checkpoint: `true` iff the calling thread is inside a
/// [`CancelScope`] whose flag has been cancelled. One relaxed load when
/// no scope is live anywhere in the process (see module docs).
#[inline]
pub fn cancelled() -> bool {
    if ACTIVE_SCOPES.load(Ordering::Relaxed) == 0 {
        return false;
    }
    cancelled_slow()
}

#[cold]
fn cancelled_slow() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|flag| flag.is_cancelled()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scope_is_never_cancelled() {
        assert!(!cancelled());
        assert!(current().is_none());
    }

    #[test]
    fn scope_exposes_flag_and_latches() {
        let flag = CancelFlag::new();
        let scope = CancelScope::enter(Some(Arc::clone(&flag)));
        assert!(!cancelled(), "fresh flag must not read cancelled");
        assert!(
            Arc::ptr_eq(&current().expect("flag installed"), &flag),
            "current() must hand back the installed flag"
        );
        flag.cancel();
        assert!(cancelled());
        assert!(flag.is_cancelled());
        drop(scope);
        assert!(!cancelled(), "scope exit must clear the context");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = CancelFlag::new();
        let inner = CancelFlag::new();
        let _a = CancelScope::enter(Some(Arc::clone(&outer)));
        outer.cancel();
        assert!(cancelled());
        {
            let _b = CancelScope::enter(Some(Arc::clone(&inner)));
            assert!(!cancelled(), "inner scope shadows the cancelled outer");
            {
                let _c = CancelScope::enter(None);
                assert!(!cancelled(), "None scope means no context");
                assert!(current().is_none());
            }
            assert!(!cancelled());
        }
        assert!(cancelled(), "outer context restored after inner drops");
    }

    #[test]
    fn flag_is_shared_across_threads() {
        let flag = CancelFlag::new();
        let worker_flag = current(); // no scope on this thread
        assert!(worker_flag.is_none());
        let _scope = CancelScope::enter(Some(Arc::clone(&flag)));
        let captured = current();
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            let _scope = CancelScope::enter(captured);
            // Report the first read before the main thread may cancel.
            tx.send(cancelled()).expect("main thread alive");
            // Spin until the main thread cancels.
            while !cancelled() {
                std::thread::yield_now();
            }
        });
        let before = rx.recv().expect("worker reports first read");
        assert!(!before, "must start un-cancelled");
        flag.cancel();
        handle.join().expect("worker");
    }
}
