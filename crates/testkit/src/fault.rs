//! Deterministic fault injection with a telemetry-style kill switch.
//!
//! Production NuFFT services need their failure paths *tested*, not just
//! written. This module provides the substrate: named fault points
//! (placed with the [`faultpoint!`](crate::faultpoint) macro) that are a
//! single relaxed atomic load + predicted branch when disarmed, and fire
//! a deterministic, seeded schedule of panics when armed.
//!
//! Mirrors the `jigsaw-telemetry` kill-switch pattern exactly:
//!
//! * **Disarmed** (the default): every [`should_fire`] call is one
//!   relaxed load and a branch — verified by the `fault_overhead` bench.
//! * **Armed**: via [`arm`] in tests, or the `JIGSAW_FAULTS` environment
//!   variable (e.g. `JIGSAW_FAULTS=site=nufft.coil,seed=7,rate=1,fires=1`)
//!   for CLI smoke runs.
//! * **Compile-time off**: the `off` cargo feature removes even the
//!   branch.
//!
//! The schedule is *deterministic*: whether the k-th evaluation of a
//! given site fires depends only on `(seed, site, k)`, so a failing chaos
//! run replays exactly. Fires are bounded by `max_fires` (default 1) so
//! graceful-degradation retries do not re-trip the same fault forever.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// 0 = uninitialized, 1 = armed, 2 = disarmed.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Panic payload thrown by a fired fault point. Handlers (the worker-pool
/// panic containment) downcast to this to report the site by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjected {
    /// The fault-point name that fired, e.g. `"fft.panel"`.
    pub site: &'static str,
}

impl std::fmt::Display for FaultInjected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at {}", self.site)
    }
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Only this site fires (all registered sites when `None`).
    pub site: Option<String>,
    /// Seed for the per-hit fire decision.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given hit of a matching site
    /// fires.
    pub rate: f64,
    /// Total number of fires across the process before the schedule goes
    /// quiet. Bounded by default so serial-fallback retries succeed.
    pub max_fires: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            site: None,
            seed: 0,
            rate: 1.0,
            max_fires: 1,
        }
    }
}

impl FaultPlan {
    /// A plan that fires exactly once, at the first hit of `site`.
    pub fn once_at(site: &str) -> Self {
        Self {
            site: Some(site.to_string()),
            ..Self::default()
        }
    }

    /// Parse the `JIGSAW_FAULTS` syntax: comma-separated `key=value`
    /// pairs among `site=`, `seed=`, `rate=`, `fires=` (e.g.
    /// `site=gridding.chunk,seed=7,rate=0.5,fires=2`). Returns `None`
    /// for the disabling spellings (empty, `0`, `off`, `false`, `no`)
    /// and for unparseable input.
    pub fn parse(spec: &str) -> Option<Self> {
        let spec = spec.trim();
        if matches!(
            spec.to_ascii_lowercase().as_str(),
            "" | "0" | "off" | "false" | "no"
        ) {
            return None;
        }
        let mut plan = Self::default();
        for part in spec.split(',') {
            let (key, value) = part.split_once('=')?;
            match key.trim() {
                "site" => plan.site = Some(value.trim().to_string()),
                "seed" => plan.seed = value.trim().parse().ok()?,
                "rate" => plan.rate = value.trim().parse().ok()?,
                "fires" => plan.max_fires = value.trim().parse().ok()?,
                _ => return None,
            }
        }
        Some(plan)
    }
}

struct FaultState {
    plan: FaultPlan,
    /// Per-site evaluation counters — the `k` in the `(seed, site, k)`
    /// fire decision.
    hits: HashMap<String, u64>,
    fired: u64,
}

fn state() -> &'static Mutex<Option<FaultState>> {
    static STATE_CELL: OnceLock<Mutex<Option<FaultState>>> = OnceLock::new();
    STATE_CELL.get_or_init(|| Mutex::new(None))
}

fn lock_state() -> MutexGuard<'static, Option<FaultState>> {
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Install `plan` and arm every fault point. Resets hit and fire
/// counters.
pub fn arm(plan: FaultPlan) {
    let mut s = lock_state();
    *s = Some(FaultState {
        plan,
        hits: HashMap::new(),
        fired: 0,
    });
    STATE.store(1, Ordering::Relaxed);
}

/// Disarm every fault point. [`should_fire`] drops back to a single
/// relaxed load + branch.
pub fn disarm() {
    STATE.store(2, Ordering::Relaxed);
    *lock_state() = None;
}

/// How many faults have fired since the last [`arm`].
pub fn fires() -> u64 {
    lock_state().as_ref().map_or(0, |s| s.fired)
}

/// Whether the fault point `site` should fire at this evaluation. The
/// disarmed fast path is one relaxed atomic load and a branch.
#[inline]
pub fn should_fire(site: &str) -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    match STATE.load(Ordering::Relaxed) {
        2 => false,
        1 => decide(site),
        _ => init_from_env(site),
    }
}

#[cold]
fn init_from_env(site: &str) -> bool {
    let plan = std::env::var("JIGSAW_FAULTS")
        .ok()
        .as_deref()
        .and_then(FaultPlan::parse);
    // First initializer wins; an explicit arm()/disarm() may have raced.
    match plan {
        Some(p) => {
            if STATE
                .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                let mut s = lock_state();
                if s.is_none() {
                    *s = Some(FaultState {
                        plan: p,
                        hits: HashMap::new(),
                        fired: 0,
                    });
                }
            }
        }
        None => {
            let _ = STATE.compare_exchange(0, 2, Ordering::Relaxed, Ordering::Relaxed);
        }
    }
    if STATE.load(Ordering::Relaxed) == 1 {
        decide(site)
    } else {
        false
    }
}

#[cold]
fn decide(site: &str) -> bool {
    let mut guard = lock_state();
    let Some(s) = guard.as_mut() else {
        return false;
    };
    if let Some(filter) = &s.plan.site {
        if filter != site {
            return false;
        }
    }
    let hit = s.hits.entry(site.to_string()).or_insert(0);
    let k = *hit;
    *hit += 1;
    if s.fired >= s.plan.max_fires {
        return false;
    }
    // SplitMix64-style mix of (seed, site, k) → uniform in [0, 1).
    let mut h: u64 = s.plan.seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in site.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h ^= k.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    if u < s.plan.rate {
        s.fired += 1;
        true
    } else {
        false
    }
}

/// Serialize tests that arm/disarm the process-wide fault state — cargo
/// runs tests on parallel threads and the kill switch is global.
pub fn test_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Place a named fault point: a no-op costing one relaxed atomic load
/// when fault injection is disarmed, a panic with a
/// [`FaultInjected`](crate::fault::FaultInjected) payload when the armed
/// schedule says this evaluation fires. The site must be a `&'static
/// str` expression (conventionally a dotted literal like
/// `"gridding.chunk"`).
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {
        if $crate::fault::should_fire($site) {
            ::std::panic::panic_any($crate::fault::FaultInjected { site: $site });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_fires() {
        let _lock = test_guard();
        disarm();
        for _ in 0..1000 {
            assert!(!should_fire("any.site"));
        }
    }

    #[test]
    fn once_at_fires_exactly_once_at_the_named_site() {
        let _lock = test_guard();
        arm(FaultPlan::once_at("a.site"));
        assert!(!should_fire("other.site"));
        assert!(should_fire("a.site"));
        assert!(!should_fire("a.site"), "max_fires=1 must bound the burst");
        assert_eq!(fires(), 1);
        disarm();
    }

    #[test]
    fn schedule_is_deterministic_in_seed_site_and_hit() {
        let _lock = test_guard();
        let plan = FaultPlan {
            site: None,
            seed: 42,
            rate: 0.5,
            max_fires: u64::MAX,
        };
        arm(plan.clone());
        let a: Vec<bool> = (0..64).map(|_| should_fire("x.y")).collect();
        arm(plan);
        let b: Vec<bool> = (0..64).map(|_| should_fire("x.y")).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&f| f));
        assert!(a.iter().any(|&f| !f));
        disarm();
    }

    #[test]
    fn env_spec_parses() {
        let p = FaultPlan::parse("site=gridding.chunk,seed=7,rate=0.25,fires=3").unwrap();
        assert_eq!(p.site.as_deref(), Some("gridding.chunk"));
        assert_eq!(p.seed, 7);
        assert_eq!(p.rate, 0.25);
        assert_eq!(p.max_fires, 3);
        assert!(FaultPlan::parse("0").is_none());
        assert!(FaultPlan::parse(" off ").is_none());
        assert!(FaultPlan::parse("").is_none());
        assert!(FaultPlan::parse("bogus").is_none());
        assert!(FaultPlan::parse("rate=abc").is_none());
        let d = FaultPlan::parse("site=s").unwrap();
        assert_eq!(d.rate, 1.0);
        assert_eq!(d.max_fires, 1);
    }

    #[test]
    fn faultpoint_macro_panics_with_typed_payload() {
        let _lock = test_guard();
        arm(FaultPlan::once_at("macro.site"));
        let err = std::panic::catch_unwind(|| faultpoint!("macro.site")).unwrap_err();
        let payload = err.downcast::<FaultInjected>().expect("typed payload");
        assert_eq!(payload.site, "macro.site");
        assert_eq!(payload.to_string(), "injected fault at macro.site");
        disarm();
    }
}
