//! Quickstart: plan a 2-D NuFFT, run the adjoint and forward transforms,
//! and check accuracy against the exact NuDFT.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jigsaw::core::gridding::{SerialGridder, SliceDiceGridder};
use jigsaw::core::metrics::rel_l2;
use jigsaw::core::nudft::adjoint_nudft;
use jigsaw::core::traj;
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;

fn main() {
    // Problem: a 64×64 image observed along a golden-angle radial
    // trajectory with 8192 non-uniform k-space samples.
    let n = 64;
    let mut coords = traj::radial_2d(64, 128, true);
    traj::shuffle(&mut coords, 7); // random arrival order, like a scanner
    let values: Vec<C64> = coords
        .iter()
        .map(|c| C64::new((c[0] * 40.0).sin(), (c[1] * 40.0).cos()))
        .collect();

    // Plan with the paper's parameters: σ = 2, W = 6, L = 32, T = 8,
    // Beatty-optimal Kaiser-Bessel kernel.
    let cfg = NufftConfig::with_n(n);
    let plan = NufftPlan::<f64, 2>::new(cfg).expect("valid configuration");

    // Adjoint NuFFT (k-space → image) with two interchangeable engines.
    let serial = plan
        .adjoint(&coords, &values, &SerialGridder)
        .expect("adjoint");
    let sliced = plan
        .adjoint(&coords, &values, &SliceDiceGridder::default())
        .expect("adjoint");
    assert_eq!(
        serial.image.iter().map(|z| z.re.to_bits()).sum::<u64>(),
        sliced.image.iter().map(|z| z.re.to_bits()).sum::<u64>(),
        "engines must agree bitwise"
    );

    // Accuracy vs the exact (slow) NuDFT.
    let exact = adjoint_nudft(n, &coords, &values, None);
    let err = rel_l2(&serial.image, &exact);
    println!("adjoint NuFFT relative L2 error vs NuDFT: {err:.2e}");

    // Forward NuFFT (image → k-space) round trip.
    let fwd = plan.forward(&serial.image, &coords).expect("forward");
    println!(
        "forward NuFFT produced {} samples; gridding was {:.1}% of adjoint time",
        fwd.samples.len(),
        100.0 * serial.timings.interp_fraction()
    );
    println!(
        "slice-and-dice did {} boundary checks for {} samples (M·T² = {})",
        sliced.grid_stats.boundary_checks,
        coords.len(),
        coords.len() * 64
    );
}
