//! 3-D stack-of-stars gridding on the JIGSAW 3D Slice variant:
//! demonstrates the slice-serial processing model and the cycle savings
//! from Z-sorting the sample stream (§IV "Gridding in 2D and 3D").
//!
//! ```sh
//! cargo run --release --example stack_of_stars_3d
//! ```

use jigsaw::core::config::GridParams;
use jigsaw::core::gridding::{Gridder, SliceDiceGridder};
use jigsaw::core::kernel::KernelKind;
use jigsaw::core::lut::KernelLut;
use jigsaw::core::metrics::rel_l2;
use jigsaw::core::phantom::Phantom3d;
use jigsaw::core::traj;
use jigsaw::num::C64;
use jigsaw::sim::{Jigsaw3dSlice, JigsawConfig};

fn main() {
    let g = 32usize; // small 3-D target grid: 32³
    let phantom = Phantom3d::default_head();

    // Stack-of-stars: radial in (ky, kx) on each of g/2 kz planes.
    let mut coords = traj::stack_of_stars_3d(24, 48, g / 2);
    traj::shuffle(&mut coords, 11);
    let n_img = g / 2; // base image size (σ = 2)
    let values = phantom.kspace(n_img, &coords);
    let m = coords.len();
    println!("stack-of-stars: {m} samples onto a {g}³ oversampled grid");

    // Map cycles → grid units.
    let mapped: Vec<[f64; 3]> = coords
        .iter()
        .map(|c| {
            [
                c[0].rem_euclid(1.0) * g as f64,
                c[1].rem_euclid(1.0) * g as f64,
                c[2].rem_euclid(1.0) * g as f64,
            ]
        })
        .collect();

    let cfg = JigsawConfig {
        grid: g,
        ..JigsawConfig::paper_default()
    };
    let mut hw = Jigsaw3dSlice::new(cfg).expect("config");
    let (stream, scale) = hw.quantize_inputs(&mapped, &values).expect("stream");

    let unsorted = hw.run(&stream, false);
    let sorted = hw.run(&stream, true);
    println!(
        "unsorted stream: {} cycles  ((M+15)·Nz = {})",
        unsorted.report.compute_cycles,
        (m as u64 + 15) * g as u64
    );
    println!(
        "Z-sorted stream: {} cycles  (≈ (M+15)·Wz = {})",
        sorted.report.compute_cycles,
        (m as u64 + 15) * 6
    );
    println!(
        "Z-sorting speedup: {:.1}×",
        unsorted.report.compute_cycles as f64 / sorted.report.compute_cycles as f64
    );
    assert_eq!(unsorted.grid, sorted.grid, "grids must be identical");

    // Verify against the software 3-D Slice-and-Dice engine in f64.
    let params = GridParams {
        grid: g,
        width: 6,
        table_oversampling: 32,
        tile: 8,
        kernel: KernelKind::Auto.resolve(6, 2.0),
    };
    let lut = KernelLut::from_params(&params);
    let mut reference = vec![C64::zeroed(); g * g * g];
    SliceDiceGridder::default().grid(&params, &lut, &mapped, &values, &mut reference);
    let err = rel_l2(&unsorted.grid_c64(scale), &reference);
    println!("fixed-point 3-D grid error vs f64 software: {err:.2e}");
}
