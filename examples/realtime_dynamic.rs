//! Real-time dynamic MRI — golden-angle sliding-window reconstruction.
//!
//! §I motivates the paper with "the rise in real-time [8] … image
//! reconstruction techniques": golden-angle radial acquisition lets any
//! consecutive window of spokes reconstruct a frame, so a scanner can
//! stream video at whatever rate the NuFFT sustains. This example plays a
//! moving phantom (a lesion orbiting the head), reconstructs a frame per
//! spoke-window, and reports the achieved frame rate — then projects it
//! onto the modeled devices to show what Slice-and-Dice GPU and JIGSAW
//! change: the NuFFT stops being the frame-rate limit.
//!
//! ```sh
//! cargo run --release --example realtime_dynamic
//! ```

use jigsaw::core::gridding::SliceDiceGridder;
use jigsaw::core::phantom::{Ellipse, Phantom2d};
use jigsaw::core::traj;
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;
use jigsaw::sim::device::Platform;
use jigsaw::sim::JigsawConfig;
use std::io::Write;
use std::time::Instant;

fn phantom_at(t: f64) -> Phantom2d {
    let mut p = Phantom2d::shepp_logan();
    // A bright lesion orbiting inside the brain.
    let theta = 2.0 * core::f64::consts::PI * t;
    p.ellipses.push(Ellipse {
        amplitude: 0.8,
        rx: 0.08,
        ry: 0.08,
        x0: 0.35 * theta.cos(),
        y0: 0.35 * theta.sin() + 0.1,
        theta: 0.0,
    });
    p
}

fn main() {
    let n = 128usize;
    let spokes_per_frame = 34; // a Fibonacci window — golden-angle sweet spot
    let frames = 8usize;
    let samples_per_spoke = 2 * n;
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).expect("plan");
    let engine = SliceDiceGridder::default();

    println!(
        "sliding-window recon: {frames} frames × {spokes_per_frame} spokes × {samples_per_spoke} samples"
    );
    std::fs::create_dir_all("out").ok();

    let mut total_m = 0usize;
    let t0 = Instant::now();
    for f in 0..frames {
        // Golden-angle spokes are continuous across frames: frame f uses
        // spokes [f·S, (f+1)·S), all from one never-repeating sequence.
        let all = traj::radial_2d((f + 1) * spokes_per_frame, samples_per_spoke, true);
        let coords: Vec<[f64; 2]> = all[f * spokes_per_frame * samples_per_spoke..].to_vec();
        let t_frame = f as f64 / frames as f64;
        let data = phantom_at(t_frame).kspace(n, &coords);
        let weighted: Vec<C64> = coords
            .iter()
            .zip(&data)
            .map(|(c, v)| {
                let r = (c[0] * c[0] + c[1] * c[1]).sqrt();
                v.scale(r.max(0.125 / (2.0 * n as f64)))
            })
            .collect();
        let out = plan
            .adjoint(&coords, &weighted, &engine)
            .expect("frame recon");
        total_m += coords.len();
        // Write each frame as a PGM for flip-book inspection.
        let mags: Vec<f64> = out.image.iter().map(|z| z.abs()).collect();
        let hi = mags.iter().cloned().fold(0.0, f64::max).max(1e-30);
        let mut buf = format!("P5\n{n} {n}\n255\n").into_bytes();
        buf.extend(mags.iter().map(|m| (m / hi * 255.0).round() as u8));
        std::fs::File::create(format!("out/dynamic_frame_{f}.pgm"))
            .and_then(|mut fh| fh.write_all(&buf))
            .expect("write frame");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let fps = frames as f64 / elapsed;
    println!("reconstructed {frames} frames in {elapsed:.2} s → {fps:.1} fps on this host");
    println!("wrote out/dynamic_frame_0..{}.pgm", frames - 1);

    // What the modeled devices would sustain for the same per-frame work.
    let m = total_m / frames;
    let pts = (2 * n) * (2 * n);
    println!("\nprojected frame rates (per-frame NuFFT only, M = {m}):");
    for p in [
        Platform::mirt_cpu(),
        Platform::impatient_gpu(),
        Platform::slice_dice_gpu(),
    ] {
        println!(
            "  {:22} {:>8.1} fps",
            p.name,
            1.0 / p.nufft_seconds(m, 6, pts)
        );
    }
    let jig = jigsaw::sim::device::JigsawPlatform::new(JigsawConfig::paper_default());
    println!(
        "  {:22} {:>8.1} fps — gridding is no longer the limit",
        jig.name(),
        1.0 / jig.nufft_seconds(m, pts)
    );
}
