//! Kernel-family comparison — §II-B: "The interpolation kernel itself can
//! be one of a variety of windowing functions, such as Kaiser-Bessel,
//! Gaussian, B-spline, Sinc, etc. The choice of windowing function is
//! application-specific."
//!
//! Reconstructs the same radial acquisition with every kernel family and
//! prints the predicted aliasing bound next to the measured error —
//! showing why the paper (and everyone else) defaults to Kaiser-Bessel.
//!
//! ```sh
//! cargo run --release --example compare_kernels
//! ```

use jigsaw::core::accuracy;
use jigsaw::core::gridding::ExactGridder;
use jigsaw::core::kernel::KernelKind;
use jigsaw::core::metrics::rel_l2;
use jigsaw::core::nudft::adjoint_nudft;
use jigsaw::core::traj;
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;

fn main() {
    let n = 48usize;
    let w = 6usize;
    let mut coords = traj::radial_2d(60, 96, true);
    traj::shuffle(&mut coords, 3);
    let mut s = 7u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s as f64 / u64::MAX as f64 - 0.5
    };
    let values: Vec<C64> = (0..coords.len())
        .map(|_| C64::new(next(), next()))
        .collect();
    let exact = adjoint_nudft(n, &coords, &values, None);

    println!("kernel comparison at N = {n}, W = {w}, σ = 2 (exact weights):\n");
    println!(
        "{:<28} {:>14} {:>14}",
        "kernel", "aliasing bound", "measured err"
    );
    let kernels = [
        ("Kaiser-Bessel (Beatty β)", KernelKind::Auto.resolve(w, 2.0)),
        (
            "Kaiser-Bessel (β = 8)",
            KernelKind::KaiserBessel { beta: 8.0 },
        ),
        (
            "Gaussian (s = W/6)",
            KernelKind::Gaussian { s: w as f64 / 6.0 },
        ),
        ("cubic B-spline", KernelKind::BSpline),
        ("Hann cosine", KernelKind::Cosine),
        ("windowed sinc", KernelKind::Sinc),
        ("triangle", KernelKind::Triangle),
    ];
    for (name, kernel) in kernels {
        let mut cfg = NufftConfig::with_n(n);
        cfg.width = w;
        cfg.kernel = kernel;
        let bound = accuracy::aliasing_bound(&cfg);
        let plan = NufftPlan::<f64, 2>::new(cfg).expect("plan");
        let img = plan
            .adjoint(&coords, &values, &ExactGridder)
            .expect("adjoint")
            .image;
        let err = rel_l2(&img, &exact);
        println!("{name:<28} {bound:>14.2e} {err:>14.2e}");
    }
    println!("\nThe Beatty-tuned Kaiser-Bessel wins by orders of magnitude at equal");
    println!("width — the reason it is the de-facto gridding kernel and the one");
    println!("burned into JIGSAW's weight LUTs.");
}
