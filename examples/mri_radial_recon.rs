//! MRI radial reconstruction: the paper's motivating workload.
//!
//! Generates exact synthetic k-space of the Shepp-Logan phantom along a
//! golden-angle radial trajectory, applies ramp density compensation, and
//! reconstructs with the adjoint NuFFT using the Slice-and-Dice engine.
//! Writes the phantom and the reconstruction as PGM images and prints the
//! quality metrics.
//!
//! ```sh
//! cargo run --release --example mri_radial_recon
//! ```

use jigsaw::core::gridding::SliceDiceGridder;
use jigsaw::core::metrics::{nrmsd_percent, psnr_db};
use jigsaw::core::phantom::Phantom2d;
use jigsaw::core::traj;
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;
use std::io::Write;

fn write_pgm(path: &str, image: &[C64], n: usize) -> std::io::Result<()> {
    let mags: Vec<f64> = image.iter().map(|z| z.abs()).collect();
    let hi = mags.iter().cloned().fold(0.0, f64::max).max(1e-30);
    let mut buf = format!("P5\n{n} {n}\n255\n").into_bytes();
    buf.extend(mags.iter().map(|m| (m / hi * 255.0).round() as u8));
    std::fs::create_dir_all("out")?;
    std::fs::File::create(path)?.write_all(&buf)
}

fn main() {
    let n = 192usize;
    let phantom = Phantom2d::shepp_logan();

    // Fully-sampled golden-angle radial acquisition: π/2·N spokes of 2N
    // samples is the classic sufficiency criterion; we use 1.2× that.
    let spokes = (1.2 * core::f64::consts::FRAC_PI_2 * n as f64) as usize;
    let mut coords = traj::radial_2d(spokes, 2 * n, true);
    traj::shuffle(&mut coords, 2024);
    println!(
        "acquisition: {spokes} spokes × {} samples = {} total",
        2 * n,
        coords.len()
    );

    // Exact k-space from the analytic ellipse transforms.
    let kspace = phantom.kspace(n, &coords);

    // Ramp density compensation |k| (radial sampling density ∝ 1/|k|).
    let weighted: Vec<C64> = coords
        .iter()
        .zip(&kspace)
        .map(|(c, v)| {
            let r = (c[0] * c[0] + c[1] * c[1]).sqrt();
            v.scale(r.max(0.125 / (2.0 * n as f64)))
        })
        .collect();

    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).expect("plan");
    let recon = plan
        .adjoint(&coords, &weighted, &SliceDiceGridder::default())
        .expect("reconstruction");

    // Compare against the antialiased rasterized phantom (normalize both
    // to unit peak — the adjoint is unnormalized).
    let truth = phantom.rasterize_aa(n, 4);
    let peak_r = recon.image.iter().map(|z| z.abs()).fold(0.0, f64::max);
    let peak_t = truth.iter().map(|z| z.abs()).fold(0.0, f64::max);
    let recon_norm: Vec<C64> = recon.image.iter().map(|z| z.unscale(peak_r)).collect();
    let truth_norm: Vec<C64> = truth.iter().map(|z| z.unscale(peak_t)).collect();

    println!(
        "reconstruction quality: NRMSD {:.2}%, PSNR {:.1} dB",
        nrmsd_percent(&recon_norm, &truth_norm),
        psnr_db(&recon_norm, &truth_norm)
    );
    println!(
        "timing: gridding {:.1} ms ({:.1}% of total), FFT {:.1} ms",
        recon.timings.interp_seconds * 1e3,
        100.0 * recon.timings.interp_fraction(),
        recon.timings.fft_seconds * 1e3
    );

    write_pgm("out/radial_truth.pgm", &truth, n).expect("write");
    write_pgm("out/radial_recon.pgm", &recon.image, n).expect("write");
    println!("wrote out/radial_truth.pgm and out/radial_recon.pgm");
}
