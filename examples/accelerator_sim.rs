//! Drive the JIGSAW accelerator simulator end to end: quantize a sample
//! stream, run the stall-free fixed-point pipelines, verify the timing
//! law, hand the gridded result to the host FFT, and report power/energy
//! from the calibrated Table II model.
//!
//! ```sh
//! cargo run --release --example accelerator_sim
//! ```

use jigsaw::core::gridding::{Gridder, SerialGridder};
use jigsaw::core::lut::KernelLut;
use jigsaw::core::metrics::rel_l2;
use jigsaw::core::phantom::Phantom2d;
use jigsaw::core::traj;
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;
use jigsaw::sim::power::{PowerModel, Variant};
use jigsaw::sim::{Jigsaw2d, JigsawConfig};

fn main() {
    let n = 128usize;
    let g = 2 * n;

    // Workload: spiral acquisition of the Shepp-Logan phantom.
    let mut coords = traj::spiral_2d(12, 8000, 10.0);
    traj::shuffle(&mut coords, 5);
    let values = Phantom2d::shepp_logan().kspace(n, &coords);
    let m = coords.len();

    // Host plan (for coordinate mapping and the post-gridding stages).
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).expect("plan");
    let mapped = plan.map_coords(&coords);

    // Instantiate the accelerator: G = 256 target grid, W = 6, L = 32.
    let cfg = JigsawConfig {
        grid: g,
        ..JigsawConfig::paper_default()
    };
    let mut hw = Jigsaw2d::new(cfg.clone()).expect("hardware config");

    // DMA stream: quantize coordinates to 1/L and values to Q1.15.
    let (stream, scale) = hw.quantize_inputs(&mapped, &values).expect("stream");
    println!("streaming {m} samples into the {0}×{0} pipeline array…", 8);

    let run = hw.run(&stream);
    let r = &run.report;
    println!(
        "compute cycles : {} (M + 12 = {})",
        r.compute_cycles,
        m + 12
    );
    println!("readout cycles : {} (G²/2)", r.readout_cycles);
    println!(
        "gridding time  : {:.3} µs @ 1.0 GHz",
        r.gridding_seconds() * 1e6
    );
    println!(
        "ops: {} select checks, {} LUT reads, {} MACs, {} accumulator RMWs, {} saturations",
        r.ops.select_checks, r.ops.lut_reads, r.ops.interp_macs, r.ops.accum_rmw, r.ops.saturations
    );

    // Verify the fixed-point grid against the f64 software reference.
    let params = plan.grid_params().clone();
    let lut = KernelLut::from_params(&params);
    let mut reference = vec![C64::zeroed(); g * g];
    SerialGridder.grid(&params, &lut, &mapped, &values, &mut reference);
    let hw_grid = run.grid_c64(scale);
    println!(
        "fixed-point grid error vs f64 reference: {:.2e}",
        rel_l2(&hw_grid, &reference)
    );

    // Host completes the NuFFT from the accelerator's grid.
    let mut grid = hw_grid;
    let (image, host) = plan.finish_adjoint(&mut grid).expect("host stages");
    println!(
        "host FFT {:.2} ms + apod {:.2} ms → {}×{} image",
        host.fft_seconds * 1e3,
        host.apod_seconds * 1e3,
        n,
        n
    );
    let _ = image;

    // Power/energy from the calibrated model.
    let pm = PowerModel::calibrated();
    let w2 = (cfg.width * cfg.width) as f64;
    println!(
        "modeled power {:.1} mW, area {:.2} mm², gridding energy {:.2} µJ",
        pm.power_mw(&cfg, Variant::TwoD, w2, true),
        pm.area_mm2(&cfg, Variant::TwoD, true),
        pm.energy_joules(&cfg, Variant::TwoD, r) * 1e6
    );
}
