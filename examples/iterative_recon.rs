//! Iterative (CG) reconstruction — the paper's motivating workload, where
//! "millions of NuFFTs are taken iteratively to reconstruct a single
//! volume" and gridding throughput decides everything.
//!
//! Compares three reconstructions of an undersampled radial acquisition:
//! direct adjoint, density-compensated adjoint, and conjugate-gradient
//! least squares — and both normal-operator strategies (NuFFT pair per
//! iteration vs Impatient's Toeplitz embedding).
//!
//! ```sh
//! cargo run --release --example iterative_recon
//! ```

use jigsaw::core::density;
use jigsaw::core::gridding::SliceDiceGridder;
use jigsaw::core::lut::KernelLut;
use jigsaw::core::metrics::nrmsd_percent;
use jigsaw::core::phantom::Phantom2d;
use jigsaw::core::recon::{cg_solve, CgOptions, NormalOp};
use jigsaw::core::toeplitz::ToeplitzOperator;
use jigsaw::core::traj;
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;
use std::time::Instant;

fn main() {
    let n = 96usize;
    let phantom = Phantom2d::shepp_logan();

    // 2× undersampled radial acquisition (half the fully-sampled spokes).
    let spokes = (core::f64::consts::FRAC_PI_2 * n as f64 / 2.0) as usize;
    let mut coords = traj::radial_2d(spokes, 2 * n, true);
    traj::shuffle(&mut coords, 77);
    let data = phantom.kspace(n, &coords);
    println!(
        "undersampled radial: {spokes} spokes, {} samples for a {n}² image",
        coords.len()
    );

    let cfg = NufftConfig::with_n(n);
    let plan = NufftPlan::<f64, 2>::new(cfg.clone()).expect("plan");
    let engine = SliceDiceGridder::default();
    let truth = phantom.rasterize_aa(n, 4);
    let quality = |img: &[C64]| -> f64 {
        let pk = |v: &[C64]| v.iter().map(|z| z.abs()).fold(0.0, f64::max).max(1e-30);
        let (pi, pt) = (pk(img), pk(&truth));
        let a: Vec<C64> = img.iter().map(|z| z.unscale(pi)).collect();
        let b: Vec<C64> = truth.iter().map(|z| z.unscale(pt)).collect();
        nrmsd_percent(&a, &b)
    };

    // 1. Direct adjoint (no compensation).
    let direct = plan
        .adjoint(&coords, &data, &engine)
        .expect("adjoint")
        .image;
    println!("direct adjoint           : NRMSD {:.2}%", quality(&direct));

    // 2. Pipe–Menon density-compensated adjoint.
    let params = plan.grid_params().clone();
    let lut = KernelLut::from_params(&params);
    let mapped = plan.map_coords(&coords);
    let w = density::pipe_menon(&params, &lut, &mapped, 8).expect("pipe-menon");
    let weighted: Vec<C64> = data.iter().zip(&w).map(|(d, &wi)| d.scale(wi)).collect();
    let dc = plan
        .adjoint(&coords, &weighted, &engine)
        .expect("adjoint")
        .image;
    println!("density-compensated      : NRMSD {:.2}%", quality(&dc));

    // 3. CG with the NuFFT normal operator.
    let rhs = plan.adjoint(&coords, &data, &engine).expect("rhs").image;
    let opts = CgOptions {
        max_iterations: 15,
        tolerance: 1e-8,
        lambda: 1e-5,
        budget: Default::default(),
    };
    let t0 = Instant::now();
    let via_nufft = cg_solve(
        &NormalOp::Nufft {
            plan: &plan,
            coords: &coords,
            gridder: &engine,
            weights: &[],
        },
        &rhs,
        &opts,
    )
    .expect("cg");
    let t_nufft = t0.elapsed();
    println!(
        "CG (NuFFT operator)      : NRMSD {:.2}% after {} iters in {:.1} ms",
        quality(&via_nufft.image),
        via_nufft.residuals.len(),
        t_nufft.as_secs_f64() * 1e3
    );

    // 4. CG with the Toeplitz normal operator (grids once, FFTs after).
    let t1 = Instant::now();
    let top = std::sync::Arc::new(
        ToeplitzOperator::<2>::build(&cfg, &coords, &[], &engine).expect("toeplitz"),
    );
    let t_build = t1.elapsed();
    let t2 = Instant::now();
    let via_toeplitz = cg_solve(&NormalOp::Toeplitz(top), &rhs, &opts).expect("cg");
    let t_toep = t2.elapsed();
    println!(
        "CG (Toeplitz operator)   : NRMSD {:.2}% after {} iters in {:.1} ms (+{:.1} ms one-time gridding)",
        quality(&via_toeplitz.image),
        via_toeplitz.residuals.len(),
        t_toep.as_secs_f64() * 1e3,
        t_build.as_secs_f64() * 1e3
    );
    println!(
        "\nThe Toeplitz path amortizes gridding into setup — which is why\n\
         Impatient adopted it, and why its remaining bottleneck (that one\n\
         gridding pass) is exactly what Slice-and-Dice/JIGSAW accelerate."
    );
}
