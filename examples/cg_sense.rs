//! Multi-coil CG-SENSE reconstruction — the clinical workload shape.
//!
//! Simulates an 8-coil golden-angle radial acquisition of the Shepp-Logan
//! phantom at 3× undersampling and reconstructs with CG-SENSE. Every CG
//! iteration costs one forward + one adjoint NuFFT *per coil* — the
//! "millions of NuFFTs" regime from the paper's introduction, and the
//! reason a 250–1500× gridding speedup changes what is clinically
//! feasible.
//!
//! ```sh
//! cargo run --release --example cg_sense
//! ```

use jigsaw::core::gridding::SliceDiceGridder;
use jigsaw::core::metrics::nrmsd_percent;
use jigsaw::core::phantom::Phantom2d;
use jigsaw::core::recon::CgOptions;
use jigsaw::core::sense::{acquire, adjoint, cg_sense, CoilMaps};
use jigsaw::core::traj;
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;
use std::time::Instant;

fn main() {
    let n = 96usize;
    let coils = 8usize;
    let phantom = Phantom2d::shepp_logan();
    let truth = phantom.rasterize_aa(n, 4);

    // 3× undersampled golden-angle radial trajectory.
    let full = (core::f64::consts::FRAC_PI_2 * n as f64) as usize;
    let spokes = full / 3;
    let mut coords = traj::radial_2d(spokes, 2 * n, true);
    traj::shuffle(&mut coords, 11);
    println!(
        "{coils}-coil acquisition: {spokes} spokes ({}× undersampled), {} samples/coil",
        full / spokes,
        coords.len()
    );

    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).expect("plan");
    let maps = CoilMaps::synthetic(n, coils);
    let data = acquire(&plan, &maps, &truth, &coords).expect("acquire");

    let norm = |v: &[C64]| -> Vec<C64> {
        let p = v.iter().map(|z| z.abs()).fold(0.0, f64::max).max(1e-30);
        v.iter().map(|z| z.unscale(p)).collect()
    };
    let tn = norm(&truth);

    // Coil-combined direct adjoint.
    let engine = SliceDiceGridder::default();
    let direct = adjoint(&plan, &maps, &data, &coords, &engine).expect("adjoint");
    println!(
        "coil-combined adjoint : NRMSD {:.2}%",
        nrmsd_percent(&norm(&direct), &tn)
    );

    // CG-SENSE.
    let t0 = Instant::now();
    let iters = 20;
    let out = cg_sense(
        &plan,
        &maps,
        &data,
        &coords,
        &engine,
        &CgOptions {
            max_iterations: iters,
            tolerance: 1e-9,
            lambda: 1e-4,
            budget: Default::default(),
        },
    )
    .expect("cg-sense");
    let dt = t0.elapsed().as_secs_f64();
    let nuffts = out.residuals.len() * coils * 2 + coils; // fwd+adj per coil per iter + rhs
    println!(
        "CG-SENSE ({} iters)   : NRMSD {:.2}% in {:.2} s — {} NuFFT invocations",
        out.residuals.len(),
        nrmsd_percent(&norm(&out.image), &tn),
        dt,
        nuffts
    );
    println!(
        "                        ≈ {:.1} ms per NuFFT on this host; a 250× gridding\n\
         speedup turns this reconstruction from {:.1} s into ~{:.0} ms.",
        dt * 1e3 / nuffts as f64,
        dt,
        dt * 1e3 / 100.0
    );
}
