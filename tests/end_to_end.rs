//! End-to-end integration tests spanning every crate: trajectory →
//! analytic phantom k-space → gridding engine → FFT → apodization →
//! image, checked against the exact NuDFT and across engines, in 2-D and
//! 3-D, in software and through the JIGSAW simulator.

use jigsaw::core::gridding::{
    BinnedGridder, ExactGridder, SerialGridder, SliceDiceGridder, SliceDiceMode,
};
use jigsaw::core::metrics::{nrmsd_percent, rel_l2};
use jigsaw::core::nudft::adjoint_nudft;
use jigsaw::core::phantom::{Phantom2d, Phantom3d};
use jigsaw::core::traj;
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;
use jigsaw::sim::{Jigsaw2d, Jigsaw3dSlice, JigsawConfig};

/// Radial phantom acquisition reconstructed via NuFFT matches the NuDFT
/// reconstruction of the same data.
#[test]
fn radial_recon_matches_nudft() {
    let n = 32;
    let mut coords = traj::radial_2d(48, 64, true);
    traj::shuffle(&mut coords, 1);
    let values = Phantom2d::shepp_logan().kspace(n, &coords);
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
    let fast = plan.adjoint(&coords, &values, &ExactGridder).unwrap().image;
    let exact = adjoint_nudft(n, &coords, &values, None);
    let err = rel_l2(&fast, &exact);
    assert!(err < 1e-4, "NuFFT vs NuDFT on phantom data: {err}");
}

/// The full reconstruction is identical regardless of gridding engine.
#[test]
fn recon_is_engine_invariant() {
    let n = 32;
    let mut coords = traj::spiral_2d(6, 600, 5.0);
    traj::shuffle(&mut coords, 2);
    let values = Phantom2d::shepp_logan().kspace(n, &coords);
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
    let a = plan
        .adjoint(&coords, &values, &SerialGridder)
        .unwrap()
        .image;
    for engine in [
        plan.adjoint(&coords, &values, &BinnedGridder::default())
            .unwrap()
            .image,
        plan.adjoint(&coords, &values, &SliceDiceGridder::default())
            .unwrap()
            .image,
        plan.adjoint(
            &coords,
            &values,
            &SliceDiceGridder::new(SliceDiceMode::Serial),
        )
        .unwrap()
        .image,
    ] {
        for (x, y) in a.iter().zip(&engine) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
}

/// Forward-then-adjoint round trip concentrates energy correctly:
/// A^H A is diagonally dominant for dense sampling.
#[test]
fn forward_adjoint_roundtrip_recovers_impulse() {
    let n = 16;
    let coords = traj::random_nd::<2>(4000, 3);
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
    let mut impulse = vec![C64::zeroed(); n * n];
    impulse[(n / 2) * n + n / 2] = C64::one();
    let samples = plan.forward(&impulse, &coords).unwrap().samples;
    let back = plan
        .adjoint(&coords, &samples, &SerialGridder)
        .unwrap()
        .image;
    // The center pixel must dominate every other pixel.
    let center = back[(n / 2) * n + n / 2].abs();
    for (i, z) in back.iter().enumerate() {
        if i != (n / 2) * n + n / 2 {
            assert!(
                z.abs() < 0.5 * center,
                "pixel {i} = {} vs center {center}",
                z.abs()
            );
        }
    }
}

/// The JIGSAW-accelerated pipeline reconstructs the same image as the
/// all-software pipeline within fixed-point error.
#[test]
fn accelerated_pipeline_matches_software() {
    let n = 32;
    let g = 64;
    let mut coords = traj::radial_2d(40, 64, true);
    traj::shuffle(&mut coords, 4);
    let values = Phantom2d::shepp_logan().kspace(n, &coords);
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
    let software = plan
        .adjoint(&coords, &values, &SerialGridder)
        .unwrap()
        .image;

    let mapped = plan.map_coords(&coords);
    let mut hw = Jigsaw2d::new(JigsawConfig::small(g)).unwrap();
    let (stream, scale) = hw.quantize_inputs(&mapped, &values).unwrap();
    let run = hw.run(&stream);
    let mut grid = run.grid_c64(scale);
    let (accelerated, _) = plan.finish_adjoint(&mut grid).unwrap();

    let nrmsd = nrmsd_percent(&accelerated, &software);
    assert!(nrmsd < 0.5, "accelerated recon NRMSD {nrmsd} %");
}

/// Full 3-D pipeline: stack-of-stars phantom acquisition through the 3-D
/// slice simulator vs the 3-D software engine, then a 3-D NuFFT.
#[test]
fn three_d_pipeline() {
    let n = 8;
    let g = 16;
    let mut coords = traj::stack_of_stars_3d(12, 16, g);
    traj::shuffle(&mut coords, 5);
    let values = Phantom3d::default_head().kspace(n, &coords);

    // 3-D NuFFT vs NuDFT.
    let plan = NufftPlan::<f64, 3>::new(NufftConfig::with_n(n)).unwrap();
    let img = plan.adjoint(&coords, &values, &ExactGridder).unwrap().image;
    let exact = adjoint_nudft(n, &coords, &values, None);
    let err = rel_l2(&img, &exact);
    assert!(err < 1e-3, "3-D NuFFT vs NuDFT: {err}");

    // Simulator vs software gridding on the same mapped coordinates.
    let mapped = plan.map_coords(&coords);
    let params = plan.grid_params().clone();
    let lut = jigsaw::core::lut::KernelLut::from_params(&params);
    let mut sw = vec![C64::zeroed(); g * g * g];
    use jigsaw::core::gridding::Gridder;
    SerialGridder.grid(&params, &lut, &mapped, &values, &mut sw);
    let mut hw = Jigsaw3dSlice::new(JigsawConfig::small(g)).unwrap();
    let (stream, scale) = hw.quantize_inputs(&mapped, &values).unwrap();
    let run = hw.run(&stream, true);
    let err3 = rel_l2(&run.grid_c64(scale), &sw);
    assert!(err3 < 5e-3, "3-D sim vs software: {err3}");
}

/// Error decreases monotonically as the table oversampling grows —
/// the L-sweep behind Fig. 9.
#[test]
fn quality_improves_with_table_oversampling() {
    let n = 32;
    let mut coords = traj::radial_2d(48, 64, true);
    traj::shuffle(&mut coords, 6);
    let values = Phantom2d::shepp_logan().kspace(n, &coords);
    let exact = adjoint_nudft(n, &coords, &values, None);
    let mut last = f64::MAX;
    for l in [8usize, 64, 512] {
        let mut cfg = NufftConfig::with_n(n);
        cfg.table_oversampling = l;
        let plan = NufftPlan::<f64, 2>::new(cfg).unwrap();
        let img = plan
            .adjoint(&coords, &values, &SerialGridder)
            .unwrap()
            .image;
        let err = rel_l2(&img, &exact);
        assert!(err < last, "L = {l}: err {err} should beat {last}");
        last = err;
    }
}

/// Density-compensated radial reconstruction resembles the phantom.
#[test]
fn radial_recon_resembles_phantom() {
    let n = 64;
    let mut coords = traj::radial_2d(128, 128, true);
    traj::shuffle(&mut coords, 7);
    let values = Phantom2d::shepp_logan().kspace(n, &coords);
    let weighted: Vec<C64> = coords
        .iter()
        .zip(&values)
        .map(|(c, v)| {
            let r = (c[0] * c[0] + c[1] * c[1]).sqrt();
            v.scale(r.max(0.125 / (2.0 * n as f64)))
        })
        .collect();
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
    let recon = plan
        .adjoint(&coords, &weighted, &SliceDiceGridder::default())
        .unwrap()
        .image;
    let truth = Phantom2d::shepp_logan().rasterize_aa(n, 4);
    let peak_r = recon.iter().map(|z| z.abs()).fold(0.0, f64::max);
    let peak_t = truth.iter().map(|z| z.abs()).fold(0.0, f64::max);
    let rn: Vec<C64> = recon.iter().map(|z| z.unscale(peak_r)).collect();
    let tn: Vec<C64> = truth.iter().map(|z| z.unscale(peak_t)).collect();
    let nrmsd = nrmsd_percent(&rn, &tn);
    assert!(
        nrmsd < 10.0,
        "direct radial recon NRMSD {nrmsd} % — should broadly match the phantom"
    );
}
