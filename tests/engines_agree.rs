//! Cross-crate property tests: every gridding engine — serial, naive
//! output-parallel, binned, Slice-and-Dice in all modes, and the JIGSAW
//! fixed-point simulator — must compute the *same gridding operator*,
//! whether it runs on legacy scoped threads or the persistent worker
//! pool, and for any worker count.
//!
//! The deterministic f64 engines must agree **bitwise** (they share the
//! decomposition, the LUT, and the per-point accumulation order); the
//! atomic and fixed-point paths agree within their documented error
//! bounds.

use jigsaw::core::config::GridParams;
use jigsaw::core::engine::ExecBackend;
use jigsaw::core::gridding::{
    BinnedGridder, Gridder, NaiveOutputGridder, SerialGridder, SliceDiceGridder, SliceDiceMode,
};
use jigsaw::core::kernel::KernelKind;
use jigsaw::core::lut::KernelLut;
use jigsaw::core::metrics::rel_l2;
use jigsaw::num::C64;
use jigsaw::sim::{Jigsaw2d, JigsawConfig};
use jigsaw_testkit::{cases, Rng};

fn params(grid: usize, width: usize, l: usize) -> GridParams {
    GridParams {
        grid,
        width,
        table_oversampling: l,
        tile: 8,
        kernel: KernelKind::Auto.resolve(width, 2.0),
    }
}

/// Draw 1..max_m samples uniformly over the `[0, grid)^2` torus, with a
/// bias toward the wrap-sensitive border band so every run exercises the
/// decrement-on-wrap paths.
fn arb_samples(rng: &mut Rng, grid: usize, max_m: usize) -> (Vec<[f64; 2]>, Vec<C64>) {
    let g = grid as f64;
    let m = rng.usize_range(1, max_m);
    let mut coords = Vec::with_capacity(m);
    let mut values = Vec::with_capacity(m);
    for _ in 0..m {
        let mut c = [0.0; 2];
        for x in c.iter_mut() {
            *x = if rng.bool(0.25) {
                // Border band: within W of either edge.
                let off = rng.f64_range(0.0, 8.0);
                if rng.bool(0.5) {
                    off
                } else {
                    (g - off).min(g * (1.0 - f64::EPSILON))
                }
            } else {
                rng.f64_range(0.0, g)
            };
        }
        coords.push(c);
        values.push(C64::new(rng.f64_range(-1.0, 1.0), rng.f64_range(-1.0, 1.0)));
    }
    (coords, values)
}

fn bits(grid: &[C64]) -> Vec<(u64, u64)> {
    grid.iter()
        .map(|z| (z.re.to_bits(), z.im.to_bits()))
        .collect()
}

/// Every deterministic engine, on either backend, with 1/2/8 workers,
/// reproduces the serial reference bit-for-bit.
#[test]
fn deterministic_engines_agree_bitwise() {
    cases!(24, |rng| {
        let (coords, values) = arb_samples(rng, 32, 120);
        let width = rng.usize_range(1, 9);
        let l = *rng.choose(&[1usize, 4, 32, 64]);
        let p = params(32, width, l);
        let lut = KernelLut::from_params(&p);
        let npts = 32 * 32;
        let mut reference = vec![C64::zeroed(); npts];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut reference);
        let reference_bits = bits(&reference);
        for backend in [ExecBackend::Pooled, ExecBackend::Scoped] {
            for threads in [1usize, 2, 8] {
                let engines: Vec<Box<dyn Gridder<f64, 2>>> = vec![
                    Box::new(NaiveOutputGridder {
                        threads: Some(threads),
                        backend,
                    }),
                    Box::new(BinnedGridder {
                        bin_tile: 8,
                        threads: Some(threads),
                        backend,
                    }),
                    Box::new(BinnedGridder {
                        bin_tile: 16,
                        threads: Some(threads),
                        backend,
                    }),
                    Box::new(SliceDiceGridder {
                        mode: SliceDiceMode::Serial,
                        threads: None,
                        backend,
                    }),
                    Box::new(SliceDiceGridder {
                        mode: SliceDiceMode::ColumnParallel,
                        threads: Some(threads),
                        backend,
                    }),
                ];
                for e in &engines {
                    let mut out = vec![C64::zeroed(); npts];
                    e.grid(&p, &lut, &coords, &values, &mut out);
                    assert_eq!(
                        bits(&out),
                        reference_bits,
                        "engine {} differs ({backend:?}, {threads} threads)",
                        e.name()
                    );
                }
            }
        }
    });
}

/// The pooled backend is not merely close to the scoped one — it is the
/// *same function*: bitwise-equal output and identical logical-work
/// counters for every deterministic engine and worker count.
#[test]
fn pooled_backend_is_bitwise_invariant_of_scoped() {
    cases!(16, |rng| {
        let (coords, values) = arb_samples(rng, 64, 200);
        let p = params(64, 6, 32);
        let lut = KernelLut::from_params(&p);
        let npts = 64 * 64;
        let threads = *rng.choose(&[1usize, 2, 8]);
        type Mk = Box<dyn Fn(ExecBackend) -> Box<dyn Gridder<f64, 2>>>;
        let mks: Vec<Mk> = vec![
            Box::new(move |backend| {
                Box::new(SliceDiceGridder {
                    mode: SliceDiceMode::ColumnParallel,
                    threads: Some(threads),
                    backend,
                })
            }),
            Box::new(move |backend| {
                Box::new(BinnedGridder {
                    bin_tile: 8,
                    threads: Some(threads),
                    backend,
                })
            }),
            Box::new(move |backend| {
                Box::new(NaiveOutputGridder {
                    threads: Some(threads),
                    backend,
                })
            }),
        ];
        for mk in &mks {
            let mut scoped = vec![C64::zeroed(); npts];
            let mut pooled = vec![C64::zeroed(); npts];
            let s = mk(ExecBackend::Scoped).grid(&p, &lut, &coords, &values, &mut scoped);
            let q = mk(ExecBackend::Pooled).grid(&p, &lut, &coords, &values, &mut pooled);
            assert_eq!(bits(&scoped), bits(&pooled));
            assert_eq!(s.boundary_checks, q.boundary_checks);
            assert_eq!(s.kernel_accumulations, q.kernel_accumulations);
            assert_eq!(s.samples_processed, q.samples_processed);
        }
    });
}

/// Atomic/reduce block modes are allowed to reorder float adds; they must
/// still agree with the serial reference to ~f64 rounding, on both
/// backends.
#[test]
fn nondeterministic_engines_agree_within_fp() {
    cases!(16, |rng| {
        let (coords, values) = arb_samples(rng, 32, 120);
        let threads = rng.usize_range(2, 6);
        let p = params(32, 6, 32);
        let lut = KernelLut::from_params(&p);
        let npts = 32 * 32;
        let mut reference = vec![C64::zeroed(); npts];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut reference);
        for backend in [ExecBackend::Pooled, ExecBackend::Scoped] {
            for mode in [SliceDiceMode::BlockAtomic, SliceDiceMode::BlockReduce] {
                let mut out = vec![C64::zeroed(); npts];
                SliceDiceGridder {
                    mode,
                    threads: Some(threads),
                    backend,
                }
                .grid(&p, &lut, &coords, &values, &mut out);
                let err = rel_l2(&out, &reference);
                assert!(err < 1e-12, "mode {mode:?} ({backend:?}): err {err}");
            }
        }
    });
}

/// The fixed-point JIGSAW simulator tracks the f64 reference within its
/// quantization budget.
#[test]
fn jigsaw_sim_tracks_f64_reference() {
    cases!(12, |rng| {
        let (coords, values) = arb_samples(rng, 32, 150);
        let p = params(32, 6, 32);
        let lut = KernelLut::from_params(&p);
        let mut reference = vec![C64::zeroed(); 32 * 32];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut reference);
        let mut hw = Jigsaw2d::new(JigsawConfig::small(32)).unwrap();
        let (stream, scale) = hw.quantize_inputs(&coords, &values).unwrap();
        let run = hw.run(&stream);
        assert_eq!(run.report.compute_cycles, coords.len() as u64 + 12);
        let err = rel_l2(&run.grid_c64(scale), &reference);
        // Q1.15 weights + Q15.16 accumulators: a generous 1 % bound; the
        // typical error is ~1e-4.
        assert!(err < 1e-2, "fixed-point error {err}");
    });
}

/// Total deposited mass is engine-independent.
#[test]
fn mass_conservation_all_engines() {
    cases!(12, |rng| {
        let (coords, values) = arb_samples(rng, 64, 60);
        let p = params(64, 6, 32);
        let lut = KernelLut::from_params(&p);
        let total = |engine: &dyn Gridder<f64, 2>| -> C64 {
            let mut out = vec![C64::zeroed(); 64 * 64];
            engine.grid(&p, &lut, &coords, &values, &mut out);
            out.iter().copied().sum()
        };
        let a = total(&SerialGridder);
        let b = total(&BinnedGridder::default());
        let c = total(&SliceDiceGridder::default());
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        assert!((a - c).abs() <= 1e-9 * a.abs().max(1.0));
    });
}

#[test]
fn slice_dice_never_duplicates_samples() {
    // Deterministic spot-check of the headline claim across many edge
    // positions: samples straddling tile corners are processed once.
    let p = params(64, 6, 32);
    let lut = KernelLut::from_params(&p);
    for pos in [
        [15.9, 16.1],
        [16.0, 16.0],
        [0.0, 0.0],
        [63.99, 63.99],
        [8.0, 56.0],
    ] {
        let mut out = vec![C64::zeroed(); 64 * 64];
        let stats = SliceDiceGridder::default().grid(&p, &lut, &[pos], &[C64::one()], &mut out);
        assert_eq!(stats.samples_processed, 1, "position {pos:?}");
        let binned = BinnedGridder::default().grid(
            &p,
            &lut,
            &[pos],
            &[C64::one()],
            &mut vec![C64::zeroed(); 64 * 64],
        );
        assert!(binned.samples_processed >= 1);
    }
}
