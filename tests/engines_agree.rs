//! Cross-crate property tests: every gridding engine — serial, naive
//! output-parallel, binned, Slice-and-Dice in all modes, and the JIGSAW
//! fixed-point simulator — must compute the *same gridding operator*.
//!
//! The deterministic f64 engines must agree **bitwise** (they share the
//! decomposition, the LUT, and the per-point accumulation order); the
//! atomic and fixed-point paths agree within their documented error
//! bounds.

use jigsaw::core::config::GridParams;
use jigsaw::core::gridding::{
    BinnedGridder, Gridder, NaiveOutputGridder, SerialGridder, SliceDiceGridder, SliceDiceMode,
};
use jigsaw::core::kernel::KernelKind;
use jigsaw::core::lut::KernelLut;
use jigsaw::core::metrics::rel_l2;
use jigsaw::num::C64;
use jigsaw::sim::{Jigsaw2d, JigsawConfig};
use proptest::prelude::*;

fn params(grid: usize, width: usize, l: usize) -> GridParams {
    GridParams {
        grid,
        width,
        table_oversampling: l,
        tile: 8,
        kernel: KernelKind::Auto.resolve(width, 2.0),
    }
}

fn arb_samples(
    grid: usize,
    max_m: usize,
) -> impl Strategy<Value = (Vec<[f64; 2]>, Vec<C64>)> {
    let g = grid as f64;
    prop::collection::vec(
        (
            0.0..g,
            0.0..g,
            -1.0f64..1.0,
            -1.0f64..1.0,
        ),
        1..max_m,
    )
    .prop_map(|v| {
        let coords = v.iter().map(|&(x, y, _, _)| [x, y]).collect();
        let values = v.iter().map(|&(_, _, re, im)| C64::new(re, im)).collect();
        (coords, values)
    })
}

fn bits(grid: &[C64]) -> Vec<(u64, u64)> {
    grid.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn deterministic_engines_agree_bitwise(
        (coords, values) in arb_samples(32, 120),
        width in 1usize..=8,
        l in prop::sample::select(vec![1usize, 4, 32, 64]),
        threads in 1usize..6,
    ) {
        let p = params(32, width, l);
        let lut = KernelLut::from_params(&p);
        let npts = 32 * 32;
        let mut reference = vec![C64::zeroed(); npts];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut reference);
        let engines: Vec<Box<dyn Gridder<f64, 2>>> = vec![
            Box::new(NaiveOutputGridder),
            Box::new(BinnedGridder { bin_tile: 8, threads: Some(threads) }),
            Box::new(BinnedGridder { bin_tile: 16, threads: Some(threads) }),
            Box::new(SliceDiceGridder { mode: SliceDiceMode::Serial, threads: None }),
            Box::new(SliceDiceGridder {
                mode: SliceDiceMode::ColumnParallel,
                threads: Some(threads),
            }),
        ];
        for e in &engines {
            let mut out = vec![C64::zeroed(); npts];
            e.grid(&p, &lut, &coords, &values, &mut out);
            prop_assert_eq!(bits(&out), bits(&reference), "engine {} differs", e.name());
        }
    }

    #[test]
    fn nondeterministic_engines_agree_within_fp(
        (coords, values) in arb_samples(32, 120),
        threads in 2usize..6,
    ) {
        let p = params(32, 6, 32);
        let lut = KernelLut::from_params(&p);
        let npts = 32 * 32;
        let mut reference = vec![C64::zeroed(); npts];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut reference);
        for mode in [SliceDiceMode::BlockAtomic, SliceDiceMode::BlockReduce] {
            let mut out = vec![C64::zeroed(); npts];
            SliceDiceGridder { mode, threads: Some(threads) }
                .grid(&p, &lut, &coords, &values, &mut out);
            let err = rel_l2(&out, &reference);
            prop_assert!(err < 1e-12, "mode {mode:?}: err {err}");
        }
    }

    #[test]
    fn jigsaw_sim_tracks_f64_reference(
        (coords, values) in arb_samples(32, 150),
    ) {
        let p = params(32, 6, 32);
        let lut = KernelLut::from_params(&p);
        let mut reference = vec![C64::zeroed(); 32 * 32];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut reference);
        let mut hw = Jigsaw2d::new(JigsawConfig::small(32)).unwrap();
        let (stream, scale) = hw.quantize_inputs(&coords, &values).unwrap();
        let run = hw.run(&stream);
        prop_assert_eq!(run.report.compute_cycles, coords.len() as u64 + 12);
        let err = rel_l2(&run.grid_c64(scale), &reference);
        // Q1.15 weights + Q15.16 accumulators: a generous 1 % bound; the
        // typical error is ~1e-4.
        prop_assert!(err < 1e-2, "fixed-point error {err}");
    }

    #[test]
    fn mass_conservation_all_engines(
        (coords, values) in arb_samples(64, 60),
    ) {
        // Total deposited mass = Σ_j v_j · (Σ weights)_x · (Σ weights)_y —
        // identical across engines; here we just check engine-vs-engine.
        let p = params(64, 6, 32);
        let lut = KernelLut::from_params(&p);
        let total = |engine: &dyn Gridder<f64, 2>| -> C64 {
            let mut out = vec![C64::zeroed(); 64 * 64];
            engine.grid(&p, &lut, &coords, &values, &mut out);
            out.iter().copied().sum()
        };
        let a = total(&SerialGridder);
        let b = total(&BinnedGridder::default());
        let c = total(&SliceDiceGridder::default());
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        prop_assert!((a - c).abs() <= 1e-9 * a.abs().max(1.0));
    }
}

#[test]
fn slice_dice_never_duplicates_samples() {
    // Deterministic spot-check of the headline claim across many edge
    // positions: samples straddling tile corners are processed once.
    let p = params(64, 6, 32);
    let lut = KernelLut::from_params(&p);
    for pos in [
        [15.9, 16.1],
        [16.0, 16.0],
        [0.0, 0.0],
        [63.99, 63.99],
        [8.0, 56.0],
    ] {
        let mut out = vec![C64::zeroed(); 64 * 64];
        let stats = SliceDiceGridder::default().grid(&p, &lut, &[pos], &[C64::one()], &mut out);
        assert_eq!(stats.samples_processed, 1, "position {pos:?}");
        let binned = BinnedGridder::default().grid(
            &p,
            &lut,
            &[pos],
            &[C64::one()],
            &mut vec![C64::zeroed(); 64 * 64],
        );
        assert!(binned.samples_processed >= 1);
    }
}
