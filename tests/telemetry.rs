//! Cross-crate telemetry integration tests: spans recorded across the
//! persistent worker pool carry per-worker thread attribution, the kill
//! switch makes collection a true no-op, the chrome-trace exporter emits
//! JSON our own parser accepts, and the metrics registry mirrors
//! `GridStats` counters bit-exactly.
//!
//! Telemetry state (kill switch, event buffers, global registry) is
//! process-global, so every test takes the same mutex.

use jigsaw::core::config::GridParams;
use jigsaw::core::engine::{ExecBackend, WorkerPool};
use jigsaw::core::gridding::{Gridder, SerialGridder, SliceDiceGridder};
use jigsaw::core::kernel::KernelKind;
use jigsaw::core::lut::KernelLut;
use jigsaw::core::stats::GridStats;
use jigsaw::num::C64;
use jigsaw::telemetry::{self, json, EventKind};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn params() -> GridParams {
    GridParams {
        grid: 64,
        width: 6,
        table_oversampling: 32,
        tile: 8,
        kernel: KernelKind::Auto.resolve(6, 2.0),
    }
}

fn sample_batch(m: usize) -> (Vec<[f64; 2]>, Vec<C64>) {
    (0..m)
        .map(|i| {
            let t = i as f64;
            (
                [(t * 7.31) % 64.0, (t * 3.77) % 64.0],
                C64::new((t * 0.13).sin(), (t * 0.41).cos()),
            )
        })
        .unzip()
}

/// Pooled gridding must leave spans attributed to worker threads (their
/// own tids, registered `jigsaw-worker-*` lanes) with the dispatch span
/// nested under the engine's pass span on the calling thread.
#[test]
fn pooled_spans_carry_worker_attribution() {
    let _g = guard();
    telemetry::set_enabled(true);
    telemetry::drain_events(); // isolate
    let p = params();
    let lut = KernelLut::from_params(&p);
    let (coords, values) = sample_batch(500);
    let mut out = vec![C64::zeroed(); 64 * 64];
    let engine = SliceDiceGridder::default().with_backend(ExecBackend::Pooled);
    Gridder::<f64, 2>::grid(&engine, &p, &lut, &coords, &values, &mut out);

    let events = telemetry::drain_events();
    let main_tid = telemetry::current_tid();
    let pass = events
        .iter()
        .find(|e| e.name == "gridding.slice_dice")
        .expect("gridding pass span");
    assert_eq!(pass.cat, "gridding");
    assert_eq!(pass.tid, main_tid);
    let dispatch = events
        .iter()
        .find(|e| e.name == "engine.dispatch")
        .expect("dispatch span");
    assert_eq!(dispatch.tid, main_tid);
    assert!(
        dispatch.depth > pass.depth,
        "dispatch must nest under the gridding pass ({} vs {})",
        dispatch.depth,
        pass.depth
    );
    // The dispatch interval must lie inside the pass interval.
    let end = |e: &telemetry::Event| match e.kind {
        EventKind::Span { dur_ns } => e.ts_ns + dur_ns,
        EventKind::Counter { .. } => e.ts_ns,
    };
    assert!(dispatch.ts_ns >= pass.ts_ns && end(dispatch) <= end(pass));

    let jobs: Vec<_> = events.iter().filter(|e| e.name == "engine.job").collect();
    assert!(!jobs.is_empty(), "worker job spans recorded");
    for j in &jobs {
        assert_ne!(j.tid, main_tid, "job spans attribute to worker threads");
    }
    let lanes = telemetry::lanes();
    for j in &jobs {
        let lane = lanes
            .iter()
            .find(|(tid, _)| *tid == j.tid)
            .map(|(_, n)| n.as_str())
            .expect("worker lane registered");
        assert!(lane.starts_with("jigsaw-worker-"), "lane {lane}");
    }
}

/// With the kill switch off, no events accumulate and the global
/// registry snapshot is unchanged — run-to-run deterministic.
#[test]
fn disabled_collection_is_deterministic() {
    let _g = guard();
    telemetry::set_enabled(true);
    telemetry::drain_events();
    // Pool creation registers its wait/run histograms (get-or-create);
    // force it before the baseline so the snapshot diff is pure.
    WorkerPool::global();
    telemetry::set_enabled(false);
    let before = telemetry::global().snapshot();
    let p = params();
    let lut = KernelLut::from_params(&p);
    let (coords, values) = sample_batch(300);
    for _ in 0..2 {
        let mut out = vec![C64::zeroed(); 64 * 64];
        let engine = SliceDiceGridder::default().with_backend(ExecBackend::Pooled);
        Gridder::<f64, 2>::grid(&engine, &p, &lut, &coords, &values, &mut out);
        telemetry::record_counter("should.not.appear", 1);
        telemetry::counter_event("should.not.appear", 1.0);
    }
    // Drain before re-enabling: disabled runs must have buffered nothing.
    let events = telemetry::drain_events();
    let after = telemetry::global().snapshot();
    telemetry::set_enabled(true);
    assert!(
        events.is_empty(),
        "disabled run buffered {} events",
        events.len()
    );
    assert_eq!(
        before.to_json(),
        after.to_json(),
        "registry must be untouched while disabled"
    );
    assert_eq!(after.counter("should.not.appear"), None);
}

/// The chrome-trace exporter's output must be valid JSON per the in-repo
/// parser, with the trace_event fields Perfetto requires.
#[test]
fn chrome_trace_parses_and_has_required_fields() {
    let _g = guard();
    telemetry::set_enabled(true);
    telemetry::drain_events();
    telemetry::set_thread_lane("test-main");
    {
        let _outer = telemetry::span!("recon.outer", { n: 64 });
        let _inner = telemetry::span!("gridding.inner");
        telemetry::counter_event("recon.cg_residual", 0.25);
    }
    // Pool activity so worker lanes appear.
    WorkerPool::global().run(2, |_, _| {});
    let events = telemetry::drain_events();
    assert!(events.len() >= 4);
    let trace = telemetry::export::chrome_trace(&events, &telemetry::lanes());

    let doc = json::parse(&trace).expect("exporter must emit valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let evs = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!evs.is_empty());
    let mut phases = std::collections::BTreeSet::new();
    for e in evs {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph field");
        phases.insert(ph.to_string());
        assert!(e.get("pid").is_some() && e.get("tid").is_some());
        match ph {
            "X" => {
                assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
                assert!(e.get("dur").and_then(|v| v.as_f64()).is_some());
                assert!(e.get("cat").and_then(|v| v.as_str()).is_some());
            }
            "C" => {
                let args = e.get("args").expect("counter args");
                assert!(args.get("value").and_then(|v| v.as_f64()).is_some());
            }
            "M" => assert_eq!(e.get("name").and_then(|v| v.as_str()), Some("thread_name")),
            other => panic!("unexpected phase {other}"),
        }
    }
    for ph in ["M", "X", "C"] {
        assert!(phases.contains(ph), "missing phase {ph}");
    }
    // Span events must include both the recon and gridding categories.
    let cats: std::collections::BTreeSet<_> = evs
        .iter()
        .filter_map(|e| e.get("cat").and_then(|v| v.as_str()))
        .collect();
    assert!(cats.contains("recon") && cats.contains("gridding"));
}

/// Counters mirrored from `GridStats` into a registry must match the
/// legacy struct bit-for-bit on a fixed problem.
#[test]
fn registry_mirror_matches_gridstats_bitwise() {
    let _g = guard();
    let p = params();
    let lut = KernelLut::from_params(&p);
    let (coords, values) = sample_batch(777);
    let mut out = vec![C64::zeroed(); 64 * 64];
    let stats: GridStats =
        Gridder::<f64, 2>::grid(&SerialGridder, &p, &lut, &coords, &values, &mut out);

    let reg = telemetry::Registry::new();
    stats.mirror_to(&reg, "serial");
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("grid.serial.samples"),
        Some(stats.samples as u64)
    );
    assert_eq!(
        snap.counter("grid.serial.samples_processed"),
        Some(stats.samples_processed as u64)
    );
    assert_eq!(
        snap.counter("grid.serial.boundary_checks"),
        Some(stats.boundary_checks)
    );
    assert_eq!(
        snap.counter("grid.serial.kernel_accumulations"),
        Some(stats.kernel_accumulations)
    );
    // W² accumulations per sample on this problem.
    assert_eq!(stats.kernel_accumulations, 777 * 36);
}
