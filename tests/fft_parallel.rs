//! Parallel N-D FFT correctness: `FftNd::process_with` on a
//! [`WorkerPool`] must be **bitwise identical** to the serial
//! `FftNd::process` for every worker count, every axis-length class
//! (radix-2, radix-4, Bluestein), and every dimensionality — the hard
//! invariant that makes the pooled FFT a drop-in replacement inside the
//! NuFFT. Also pins the blocked strided passes against the O(n²) DFT
//! oracle, so the cache-blocked transpose path is checked for
//! *correctness*, not just self-consistency.

use jigsaw::core::engine::WorkerPool;
use jigsaw::fft::{dft, exec, Direction, Executor, FftNd, SerialExecutor};
use jigsaw::num::{Complex, C64};
use jigsaw_testkit::{cases, Rng};

fn random_signal(rng: &mut Rng, len: usize) -> Vec<C64> {
    (0..len)
        .map(|_| C64::new(rng.f64_range(-1.0, 1.0), rng.f64_range(-1.0, 1.0)))
        .collect()
}

/// Wrapper that reports a fixed concurrency while delegating execution to
/// an inner executor. `WorkerPool` caps its reported concurrency at the
/// machine's physical parallelism, which on a 1-CPU runner makes
/// `FftNd::process_with` take its serial fallback — correct, but then the
/// *parallel dispatch* code (snapshot, panel jobs, channel merge, arena
/// restore) would go untested. Forcing the reported concurrency ≥ 2 keeps
/// the dispatch path exercised everywhere; the bitwise invariant must hold
/// for it on any machine.
struct ForcedConcurrency<'a> {
    inner: &'a dyn Executor,
    concurrency: usize,
}

impl Executor for ForcedConcurrency<'_> {
    fn execute(&self, jobs: Vec<exec::Job>) -> Result<(), jigsaw::fft::ExecError> {
        self.inner.execute(jobs)
    }

    fn concurrency(&self) -> usize {
        self.concurrency
    }

    fn restore(
        &self,
        job: usize,
        key: u64,
        ty: std::any::TypeId,
        buf: Box<dyn std::any::Any + Send>,
        bytes: usize,
    ) {
        self.inner.restore(job, key, ty, buf, bytes)
    }
}

fn forced(inner: &dyn Executor, concurrency: usize) -> ForcedConcurrency<'_> {
    ForcedConcurrency { inner, concurrency }
}

fn assert_bitwise(a: &[C64], b: &[C64], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{ctx}: re at {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{ctx}: im at {i}");
    }
}

/// Pooled output equals serial output bit-for-bit across worker counts
/// 1/2/8 for 2-D shapes mixing radix-2 (64), radix-4 (16, 256) and
/// Bluestein (31, 45) axis lengths, in both directions.
#[test]
fn pooled_nd_fft_is_bitwise_serial_across_worker_counts() {
    let pools: Vec<WorkerPool> = [1, 2, 8].into_iter().map(WorkerPool::new).collect();
    let shapes: &[&[usize]] = &[
        &[64, 64],  // radix-2 columns, radix-2 rows
        &[16, 31],  // radix-4 columns, Bluestein rows
        &[31, 16],  // Bluestein columns, radix-4 rows
        &[45, 64],  // Bluestein columns (45 = 9·5), radix-2 rows
        &[256, 16], // radix-4 both, enough lines for many panels
    ];
    cases!(4, |rng| {
        for &shape in shapes {
            let plan = FftNd::<f64>::new(shape);
            let input = random_signal(rng, plan.len());
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut want = input.clone();
                plan.process(&mut want, dir);
                for pool in &pools {
                    // As the pool reports itself (may take the serial
                    // fallback on small machines — must still match)…
                    let mut got = input.clone();
                    plan.process_with(pool, &mut got, dir);
                    assert_bitwise(
                        &got,
                        &want,
                        &format!("shape {shape:?}, {dir:?}, {} workers", pool.size()),
                    );
                    // …and with parallel dispatch forced on, so the panel
                    // job path is exercised regardless of machine size.
                    let fexec = forced(pool, pool.size().max(2));
                    let mut got = input.clone();
                    plan.process_with(&fexec, &mut got, dir);
                    assert_bitwise(
                        &got,
                        &want,
                        &format!("shape {shape:?}, {dir:?}, {} workers forced", pool.size()),
                    );
                }
            }
        }
    });
}

/// 3-D shapes: middle axes have both inner stride > 1 and multiple outer
/// blocks, exercising the full panel gather/scatter geometry.
#[test]
fn pooled_3d_fft_is_bitwise_serial() {
    let pool = WorkerPool::new(8);
    let fexec = forced(&pool, 8);
    cases!(3, |rng| {
        for shape in [&[8usize, 12, 10][..], &[5, 33, 8][..], &[16, 16, 16][..]] {
            let plan = FftNd::<f64>::new(shape);
            let input = random_signal(rng, plan.len());
            let mut want = input.clone();
            plan.process(&mut want, Direction::Forward);
            let mut got = input.clone();
            plan.process_with(&fexec, &mut got, Direction::Forward);
            assert_bitwise(&got, &want, &format!("3-D shape {shape:?}"));
        }
    });
}

/// The `SerialExecutor` path (the dependency-free default) is also
/// bitwise identical — the `Executor` abstraction itself changes nothing.
/// Checked both as-is (concurrency 1: the serial fallback) and with
/// dispatch forced, so the boxed-job path runs even without a pool.
#[test]
fn serial_executor_is_bitwise_process() {
    let exec = SerialExecutor::new();
    cases!(4, |rng| {
        let plan = FftNd::<f64>::new(&[48, 31]);
        let input = random_signal(rng, plan.len());
        let mut want = input.clone();
        plan.process(&mut want, Direction::Forward);
        let mut got = input.clone();
        plan.process_with(&exec, &mut got, Direction::Forward);
        assert_bitwise(&got, &want, "serial executor");
        let fexec = forced(&exec, 3);
        let mut got = input.clone();
        plan.process_with(&fexec, &mut got, Direction::Forward);
        assert_bitwise(&got, &want, "serial executor forced dispatch");
    });
}

/// Golden test: the blocked *strided* (column) pass agrees with the
/// O(n²) DFT oracle applied along axis 0, independently of the serial
/// row-column implementation it is compared against elsewhere.
#[test]
fn blocked_column_pass_matches_dft_oracle() {
    let pool = WorkerPool::new(4);
    let fexec = forced(&pool, 4);
    let (rows, cols) = (20usize, 24); // rows: Bluestein-free, cols span panels
    let mut rng = Rng::new(0xC01_0ACE);
    let input = random_signal(&mut rng, rows * cols);

    // Full 2-D pooled transform…
    let plan = FftNd::<f64>::new(&[rows, cols]);
    let mut got = input.clone();
    plan.process_with(&fexec, &mut got, Direction::Forward);

    // …must equal DFT along axis 0 of (DFT along axis 1 of input).
    let mut rows_done = input.clone();
    for r in rows_done.chunks_exact_mut(cols) {
        let out = dft(r, Direction::Forward);
        r.copy_from_slice(&out);
    }
    for c in 0..cols {
        let col: Vec<C64> = (0..rows).map(|r| rows_done[r * cols + c]).collect();
        let want = dft(&col, Direction::Forward);
        for r in 0..rows {
            let err = (got[r * cols + c] - want[r]).abs();
            assert!(err < 1e-9, "col {c} row {r}: err {err}");
        }
    }
}

/// Round-trip through the pooled path preserves the signal (inverse
/// scaling included), for a Bluestein-sized grid.
#[test]
fn pooled_roundtrip_restores_input() {
    let pool = WorkerPool::new(8);
    let fexec = forced(&pool, 8);
    cases!(3, |rng| {
        let plan = FftNd::<f64>::new(&[31, 45]);
        let input = random_signal(rng, plan.len());
        let mut data = input.clone();
        plan.process_with(&fexec, &mut data, Direction::Forward);
        plan.process_with(&fexec, &mut data, Direction::Inverse);
        for (i, (a, b)) in data.iter().zip(&input).enumerate() {
            assert!((*a - *b).abs() < 1e-10, "index {i}");
        }
    });
}

/// f32 pooled output is bitwise serial too (determinism is structural,
/// not a property of f64 rounding).
#[test]
fn pooled_f32_is_bitwise_serial() {
    let pool = WorkerPool::new(8);
    let fexec = forced(&pool, 8);
    let plan = FftNd::<f32>::new(&[33, 40]);
    let mut rng = Rng::new(0xF32_F32);
    let input: Vec<Complex<f32>> = (0..plan.len())
        .map(|_| {
            Complex::new(
                rng.f64_range(-1.0, 1.0) as f32,
                rng.f64_range(-1.0, 1.0) as f32,
            )
        })
        .collect();
    let mut want = input.clone();
    plan.process(&mut want, Direction::Forward);
    let mut got = input.clone();
    plan.process_with(&fexec, &mut got, Direction::Forward);
    for (x, y) in got.iter().zip(&want) {
        assert_eq!(x.re.to_bits(), y.re.to_bits());
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
}
