//! Chaos suite: every registered fault point is exercised end to end.
//!
//! For each site in `jigsaw::core::fault::SITES` this suite verifies the
//! three robustness contracts of the execution engine:
//!
//! 1. **Containment** — with the serial fallback disabled, an injected
//!    panic surfaces as `Err(Error::Execution(..))`; nothing panics or
//!    hangs, and the same global pool completes a subsequent clean run.
//! 2. **Degradation** — with the fallback enabled (the default), the
//!    same injected panic degrades to a serial retry whose output is
//!    *bitwise identical* to an unfaulted pooled run, counted in the
//!    `engine.fallbacks` metric.
//! 3. **Numerical containment** — the `recon.cg_iter` site poisons a CG
//!    residual instead of panicking; the solver returns its best iterate
//!    with a `NonFinite` diagnostic.
//!
//! The fault switch and fallback policy are process-global, so every
//! test serializes on `fault::test_guard()` and restores the fallback
//! default on drop.

use jigsaw::core::engine::set_serial_fallback;
use jigsaw::core::fault;
use jigsaw::core::gridding::SliceDiceGridder;
use jigsaw::core::recon::{
    cg_reconstruct, cg_reconstruct_with, CgDiagnostic, CgOptions, NormalOpKind,
};
use jigsaw::core::{Error, NufftConfig, NufftPlan};
use jigsaw::fft::exec::Job;
use jigsaw::fft::{Direction, ExecError, Executor, FftNd, SerialExecutor};
use jigsaw::num::C64;
use jigsaw::telemetry;
use jigsaw_testkit::fault::{arm, disarm, fires, test_guard, FaultPlan};

/// Restores the default robustness policy when a test ends (even by
/// panic): fault points disarmed, serial fallback enabled.
struct PolicyGuard;

impl Drop for PolicyGuard {
    fn drop(&mut self) {
        disarm();
        set_serial_fallback(true);
    }
}

fn bits_eq(a: &[C64], b: &[C64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// A small multi-coil problem: plan, trajectory, and per-coil data.
fn coil_problem(n: usize, coils: usize) -> (NufftPlan<f64, 2>, Vec<[f64; 2]>, Vec<Vec<C64>>) {
    let coords = jigsaw::core::traj::radial_2d(12, 2 * n, true);
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
    let data: Vec<Vec<C64>> = (0..coils)
        .map(|c| {
            coords
                .iter()
                .enumerate()
                .map(|(i, _)| C64::new((i + c) as f64 * 0.01, (c + 1) as f64 * 0.1))
                .collect()
        })
        .collect();
    (plan, coords, data)
}

fn run_batch(
    plan: &NufftPlan<f64, 2>,
    coords: &[[f64; 2]],
    data: &[Vec<C64>],
) -> Result<Vec<Vec<C64>>, Error> {
    let traj = plan.plan_trajectory(coords)?;
    let refs: Vec<&[C64]> = data.iter().map(|d| d.as_slice()).collect();
    Ok(plan
        .adjoint_batch_planned(&traj, &refs)?
        .into_iter()
        .map(|o| o.image)
        .collect())
}

/// Contract 1: with the fallback disabled, a fault at each pool-level
/// site during `adjoint_batch_planned` returns `Err(Error::Execution)`
/// — and the pool completes a clean identical run immediately after.
#[test]
fn strict_mode_surfaces_execution_errors_and_pool_survives() {
    let _lock = test_guard();
    let _policy = PolicyGuard;
    let (plan, coords, data) = coil_problem(16, 3);
    let baseline = run_batch(&plan, &coords, &data).unwrap();

    for site in [fault::ENGINE_DISPATCH, fault::NUFFT_COIL] {
        set_serial_fallback(false);
        arm(FaultPlan::once_at(site));
        let err = run_batch(&plan, &coords, &data)
            .expect_err(&format!("fault at {site} must surface in strict mode"));
        assert!(
            matches!(err, Error::Execution(_)),
            "site {site}: expected Error::Execution, got {err:?}"
        );
        assert_eq!(fires(), 1, "site {site} must actually fire");
        // The pool is not poisoned: a clean run on the same global pool
        // reproduces the baseline bitwise.
        disarm();
        set_serial_fallback(true);
        let again = run_batch(&plan, &coords, &data).unwrap();
        for (a, b) in baseline.iter().zip(&again) {
            assert!(bits_eq(a, b), "site {site}: post-failure run must match");
        }
    }
}

/// Contract 2: with the fallback enabled, a fault at each pool-level
/// site degrades to a serial retry that is bitwise identical to the
/// unfaulted pooled run and increments `engine.fallbacks`.
#[test]
fn fallback_output_is_bitwise_identical_and_counted() {
    let _lock = test_guard();
    let _policy = PolicyGuard;
    telemetry::set_enabled(true);
    let (plan, coords, data) = coil_problem(16, 3);
    let baseline = run_batch(&plan, &coords, &data).unwrap();

    for site in [fault::ENGINE_DISPATCH, fault::NUFFT_COIL] {
        let before = telemetry::global()
            .snapshot()
            .counter("engine.fallbacks")
            .unwrap_or(0);
        arm(FaultPlan::once_at(site));
        let faulted = run_batch(&plan, &coords, &data)
            .unwrap_or_else(|e| panic!("site {site}: fallback must absorb the fault: {e}"));
        assert_eq!(fires(), 1, "site {site} must actually fire");
        disarm();
        for (a, b) in baseline.iter().zip(&faulted) {
            assert!(
                bits_eq(a, b),
                "site {site}: serial fallback must be bitwise identical"
            );
        }
        let after = telemetry::global()
            .snapshot()
            .counter("engine.fallbacks")
            .unwrap_or(0);
        assert!(
            after > before,
            "site {site}: engine.fallbacks must increment ({before} → {after})"
        );
    }
}

/// Contract 2 for the pooled gridding engines: a fault in a gridding
/// chunk job degrades to a bitwise-identical serial regrid.
#[test]
fn gridding_chunk_fault_degrades_bitwise() {
    let _lock = test_guard();
    let _policy = PolicyGuard;
    telemetry::set_enabled(true);
    let (plan, coords, _) = coil_problem(16, 1);
    let values: Vec<C64> = coords
        .iter()
        .enumerate()
        .map(|(i, _)| C64::new(0.02 * i as f64, -0.5))
        .collect();
    let gridder = SliceDiceGridder::default(); // pooled column-parallel
    let baseline = plan.adjoint(&coords, &values, &gridder).unwrap().image;

    let before = telemetry::global()
        .snapshot()
        .counter("engine.fallbacks")
        .unwrap_or(0);
    arm(FaultPlan::once_at(fault::GRIDDING_CHUNK));
    let faulted = plan.adjoint(&coords, &values, &gridder).unwrap().image;
    assert_eq!(fires(), 1, "gridding.chunk must actually fire");
    disarm();
    assert!(
        bits_eq(&baseline, &faulted),
        "gridding fallback must be bitwise identical"
    );
    let after = telemetry::global()
        .snapshot()
        .counter("engine.fallbacks")
        .unwrap_or(0);
    assert!(after > before, "engine.fallbacks must increment");
}

/// An executor that *reports* concurrency 2 — forcing [`FftNd`] onto its
/// panel-job orchestration even on a single-CPU machine, where
/// `WorkerPool::concurrency()` is capped at 1 and the panel path (and
/// its fault point) would be unreachable — while delegating actual
/// execution to the contained [`SerialExecutor`].
struct PanelDriver(SerialExecutor);

impl Executor for PanelDriver {
    fn execute(&self, jobs: Vec<Job>) -> Result<(), ExecError> {
        self.0.execute(jobs)
    }

    fn concurrency(&self) -> usize {
        2
    }

    fn restore(
        &self,
        job: usize,
        key: u64,
        ty: std::any::TypeId,
        buf: Box<dyn std::any::Any + Send>,
        bytes: usize,
    ) {
        self.0.restore(job, key, ty, buf, bytes);
    }
}

/// Contracts 1 + 2 for the FFT panel site, driven through an executor
/// that keeps the panel-job path live on single-CPU machines.
#[test]
fn fft_panel_fault_strict_errors_then_fallback_matches_serial() {
    let _lock = test_guard();
    let _policy = PolicyGuard;
    telemetry::set_enabled(true);
    let pool = PanelDriver(SerialExecutor::new());
    let fft = FftNd::<f64>::new(&[16, 16]);
    let mut baseline: Vec<C64> = (0..256)
        .map(|i| C64::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos()))
        .collect();
    let original = baseline.clone();
    fft.process_with(&pool, &mut baseline, Direction::Forward);

    // Strict: the contained panel panic surfaces as an ExecError.
    arm(FaultPlan::once_at(fault::FFT_PANEL));
    let mut strict = original.clone();
    let err = fft
        .try_process_with(&pool, &mut strict, Direction::Forward)
        .expect_err("fft.panel fault must surface in strict mode");
    assert_eq!(fires(), 1, "fft.panel must actually fire");
    assert!(err.to_string().contains("fft.panel"), "got: {err}");
    disarm();

    // Degrading: the per-axis serial retry is bitwise identical.
    let before = telemetry::global()
        .snapshot()
        .counter("engine.fallbacks")
        .unwrap_or(0);
    arm(FaultPlan::once_at(fault::FFT_PANEL));
    let mut degraded = original.clone();
    fft.process_with(&pool, &mut degraded, Direction::Forward);
    assert_eq!(fires(), 1);
    disarm();
    assert!(
        bits_eq(&baseline, &degraded),
        "FFT serial retry must be bitwise identical"
    );
    let after = telemetry::global()
        .snapshot()
        .counter("engine.fallbacks")
        .unwrap_or(0);
    assert!(after > before, "engine.fallbacks must increment");

    // The pool survives both faults and still runs clean panel jobs.
    let mut clean = original;
    fft.process_with(&pool, &mut clean, Direction::Forward);
    assert!(bits_eq(&baseline, &clean));
}

/// Contract 3: the CG-iteration site poisons a residual (no panic); the
/// solver contains the NaN and reports a `NonFinite` diagnostic with a
/// finite best iterate.
#[test]
fn cg_iteration_fault_degrades_to_nonfinite_diagnostic() {
    let _lock = test_guard();
    let _policy = PolicyGuard;
    let (plan, coords, _) = coil_problem(16, 1);
    let data: Vec<C64> = coords
        .iter()
        .enumerate()
        .map(|(i, _)| C64::new(1.0 / (1.0 + i as f64), 0.25))
        .collect();
    let opts = CgOptions {
        max_iterations: 8,
        tolerance: 1e-12,
        ..Default::default()
    };
    let gridder = SliceDiceGridder::default();

    arm(FaultPlan::once_at(fault::RECON_CG_ITER));
    let out = cg_reconstruct(&plan, &coords, &data, &[], &gridder, &opts)
        .expect("poisoned residual must be contained, not returned as Err");
    assert_eq!(fires(), 1, "recon.cg_iter must actually fire");
    disarm();
    assert_eq!(out.diagnostic, CgDiagnostic::NonFinite);
    assert!(!out.diagnostic.is_clean());
    assert!(
        out.image
            .iter()
            .all(|z| z.re.is_finite() && z.im.is_finite()),
        "best iterate must be finite"
    );
}

/// Containment for the serving layer: a panic injected into a job body
/// (`serve.job`) or into the plan-cache path (`serve.cache`) comes back
/// as a structured Execution error frame; the engine and its cache
/// survive, and the next clean run over the *same* engine reproduces an
/// unfaulted run bitwise. `serve.cache` fires before any cache lock is
/// taken, so the injected panic can never poison the cache — asserted
/// by checking the cache still serves hits afterwards.
#[test]
fn serve_faults_are_contained_and_cache_is_not_poisoned() {
    use jigsaw::core::budget::RunBudget;
    use jigsaw::core::serve::{ErrorCategory, JobRequest, Priority, ServeEngine};

    let _lock = test_guard();
    let _policy = PolicyGuard;
    let (_, coords, data) = coil_problem(16, 1);
    let req = JobRequest {
        tag: 77,
        priority: Priority::Normal,
        n: 16,
        budget_ms: 0,
        coords: coords.clone(),
        values: data[0].clone(),
    };
    let budget = RunBudget::unlimited();

    for site in [fault::SERVE_JOB, fault::SERVE_CACHE] {
        let engine = ServeEngine::new(4);
        let baseline = {
            // Unfaulted reference from a separate engine so the faulted
            // engine's cache state is not pre-warmed.
            let fresh = ServeEngine::new(4);
            fresh.execute(&req, &budget).unwrap().image
        };
        arm(FaultPlan::once_at(site));
        let err = engine
            .execute(&req, &budget)
            .expect_err("injected panic must become an error frame");
        assert_eq!(fires(), 1, "site {site} must actually fire");
        assert_eq!(err.tag, 77, "site {site}: error frame keeps the job tag");
        assert_eq!(
            err.category,
            ErrorCategory::Execution,
            "site {site}: contained panic maps to Execution"
        );
        assert!(
            err.message.contains(site),
            "site {site}: got {}",
            err.message
        );
        disarm();

        // The engine survives: a clean run succeeds and matches the
        // unfaulted reference bitwise; a second run hits the cache,
        // proving the fault did not poison it.
        let clean = engine.execute(&req, &budget).unwrap();
        assert!(
            bits_eq(&baseline, &clean.image),
            "site {site}: post-fault run must match the unfaulted run"
        );
        let warm = engine.execute(&req, &budget).unwrap();
        assert!(warm.cache_hit, "site {site}: cache must still serve hits");
        assert!(bits_eq(&baseline, &warm.image));
    }
}

/// Contract 2 for the Toeplitz normal-operator build (`recon.normal_op`):
/// with the fallback enabled, a panic injected into the kernel build
/// degrades the whole reconstruction to the gridded normal operator —
/// bitwise identical to an explicit `NormalOpKind::Gridded` run — and is
/// counted in `recon.normal_op_fallbacks`.
#[test]
fn normal_op_build_fault_degrades_to_gridded_bitwise() {
    let _lock = test_guard();
    let _policy = PolicyGuard;
    telemetry::set_enabled(true);
    let (plan, coords, _) = coil_problem(16, 1);
    let data: Vec<C64> = coords
        .iter()
        .enumerate()
        .map(|(i, _)| C64::new(1.0 / (1.0 + i as f64), 0.25))
        .collect();
    let opts = CgOptions {
        max_iterations: 6,
        tolerance: 1e-12,
        ..Default::default()
    };
    let gridder = SliceDiceGridder::default();

    let baseline = cg_reconstruct_with(
        &plan,
        &coords,
        &data,
        &[],
        &gridder,
        &opts,
        NormalOpKind::Gridded,
    )
    .unwrap();

    let before = telemetry::global()
        .snapshot()
        .counter("recon.normal_op_fallbacks")
        .unwrap_or(0);
    arm(FaultPlan::once_at(fault::RECON_NORMAL_OP));
    let degraded = cg_reconstruct_with(
        &plan,
        &coords,
        &data,
        &[],
        &gridder,
        &opts,
        NormalOpKind::Toeplitz,
    )
    .expect("build fault must degrade to the gridded path, not error");
    assert_eq!(fires(), 1, "recon.normal_op must actually fire");
    disarm();
    assert!(
        bits_eq(&baseline.image, &degraded.image),
        "degraded Toeplitz recon must be bitwise identical to gridded"
    );
    let after = telemetry::global()
        .snapshot()
        .counter("recon.normal_op_fallbacks")
        .unwrap_or(0);
    assert!(
        after > before,
        "recon.normal_op_fallbacks must increment ({before} → {after})"
    );
}

/// Contract 1 for `recon.normal_op`: with the fallback disabled, the
/// injected build panic surfaces as `Err(Error::Execution)` — and the
/// same problem reconstructs cleanly immediately after.
#[test]
fn normal_op_build_fault_strict_surfaces_execution_error() {
    let _lock = test_guard();
    let _policy = PolicyGuard;
    let (plan, coords, _) = coil_problem(16, 1);
    let data: Vec<C64> = coords
        .iter()
        .enumerate()
        .map(|(i, _)| C64::new(1.0 / (1.0 + i as f64), 0.25))
        .collect();
    let opts = CgOptions {
        max_iterations: 4,
        tolerance: 1e-12,
        ..Default::default()
    };
    let gridder = SliceDiceGridder::default();

    set_serial_fallback(false);
    arm(FaultPlan::once_at(fault::RECON_NORMAL_OP));
    let err = cg_reconstruct_with(
        &plan,
        &coords,
        &data,
        &[],
        &gridder,
        &opts,
        NormalOpKind::Toeplitz,
    )
    .expect_err("strict mode must surface the build fault");
    assert_eq!(fires(), 1, "recon.normal_op must actually fire");
    assert!(
        matches!(err, Error::Execution(_)),
        "expected Error::Execution, got {err:?}"
    );
    disarm();
    set_serial_fallback(true);
    cg_reconstruct_with(
        &plan,
        &coords,
        &data,
        &[],
        &gridder,
        &opts,
        NormalOpKind::Toeplitz,
    )
    .expect("clean Toeplitz run must succeed after the fault");
}

/// Containment for the shed path (`serve.shed`): a panic injected while
/// the daemon builds an `Overloaded` refusal frame degrades to a plain
/// execution-error frame — the reader thread survives, and the same
/// daemon still serves the next (high-priority) job in the session.
#[test]
fn serve_shed_fault_degrades_to_error_frame_and_daemon_survives() {
    use jigsaw::core::serve::protocol::{encode, read_frame};
    use jigsaw::core::serve::{
        serve_stream, ErrorCategory, Frame, JobRequest, Priority, ServeOptions,
    };

    let _lock = test_guard();
    let _policy = PolicyGuard;
    telemetry::set_enabled(true);
    let coords = jigsaw::core::traj::radial_2d(4, 16, true);
    let values: Vec<C64> = vec![C64::new(1.0, 0.0); coords.len()];
    let req = |tag: u64, priority: Priority| JobRequest {
        tag,
        priority,
        n: 8,
        budget_ms: 0,
        coords: coords.clone(),
        values: values.clone(),
    };

    // Depth bound 0: the normal submit is shed deterministically; with
    // the fault armed, the refusal-frame build panics inside the
    // daemon's catch_unwind.
    let shed_before = telemetry::global()
        .snapshot()
        .counter("serve.shed.depth")
        .unwrap_or(0);
    arm(FaultPlan::once_at(fault::SERVE_SHED));
    let mut input = Vec::new();
    input.extend_from_slice(&encode(&Frame::Submit(req(1, Priority::Normal))));
    input.extend_from_slice(&encode(&Frame::Submit(req(2, Priority::High))));
    input.extend_from_slice(&encode(&Frame::Shutdown));
    let out = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    struct SharedOut(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedOut {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    serve_stream(
        std::io::Cursor::new(input),
        SharedOut(std::sync::Arc::clone(&out)),
        &ServeOptions {
            max_queue_depth: 0,
            executors: 1,
            ..Default::default()
        },
    )
    .expect("daemon must exit cleanly despite the shed-path panic");
    assert_eq!(fires(), 1, "serve.shed must actually fire");
    disarm();

    let bytes = out.lock().unwrap().clone();
    let mut r = std::io::Cursor::new(bytes);
    let mut replies = Vec::new();
    while let Ok(f) = read_frame(&mut r) {
        replies.push(f);
    }
    // The shed job's refusal degraded to a contained execution error
    // (not a panic, not silence) …
    assert!(
        replies.iter().any(|f| matches!(
            f,
            Frame::Error(e) if e.tag == 1
                && e.category == ErrorCategory::Execution
                && e.message.contains("contained")
        )),
        "expected contained shed-path error frame, got {replies:?}"
    );
    // … the shed was still counted before the fault fired …
    let shed_after = telemetry::global()
        .snapshot()
        .counter("serve.shed.depth")
        .unwrap_or(0);
    assert!(
        shed_after > shed_before,
        "serve.shed.depth must increment ({shed_before} → {shed_after})"
    );
    // … and the daemon survived to answer the high-priority job.
    assert!(
        replies
            .iter()
            .any(|f| matches!(f, Frame::Result(res) if res.tag == 2)),
        "daemon must keep serving after the contained panic: {replies:?}"
    );
}

/// Reader whose frames arrive in timed bursts, keeping a `serve_stream`
/// session alive long enough for the 25 ms watchdog tick to fire.
struct PacedReader {
    segments: std::collections::VecDeque<(std::time::Duration, Vec<u8>)>,
    current: std::io::Cursor<Vec<u8>>,
}

impl std::io::Read for PacedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            let n = std::io::Read::read(&mut self.current, buf)?;
            if n > 0 {
                return Ok(n);
            }
            match self.segments.pop_front() {
                Some((delay, bytes)) => {
                    std::thread::sleep(delay);
                    self.current = std::io::Cursor::new(bytes);
                }
                None => return Ok(0),
            }
        }
    }
}

/// Containment for the watchdog (`serve.watchdog`): a panic injected
/// into a watchdog tick is caught, counted in `serve.watchdog.panics`,
/// and the daemon keeps serving — a job submitted *after* the poisoned
/// tick still gets its result.
#[test]
fn serve_watchdog_panic_is_counted_and_daemon_keeps_serving() {
    use jigsaw::core::serve::protocol::{encode, read_frame};
    use jigsaw::core::serve::{serve_stream, Frame, JobRequest, Priority, ServeOptions};

    let _lock = test_guard();
    let _policy = PolicyGuard;
    telemetry::set_enabled(true);
    let coords = jigsaw::core::traj::radial_2d(4, 16, true);
    let values: Vec<C64> = vec![C64::new(1.0, 0.0); coords.len()];
    let req = JobRequest {
        tag: 8,
        priority: Priority::Normal,
        n: 8,
        budget_ms: 0,
        coords,
        values,
    };

    let panics_before = telemetry::global()
        .snapshot()
        .counter("serve.watchdog.panics")
        .unwrap_or(0);
    arm(FaultPlan::once_at(fault::SERVE_WATCHDOG));
    // Segment 1: ping immediately. Segment 2 arrives after 120 ms —
    // several watchdog ticks, so the armed fault fires mid-session —
    // then submits a job and shuts down.
    let mut late = Vec::new();
    late.extend_from_slice(&encode(&Frame::Submit(req)));
    late.extend_from_slice(&encode(&Frame::Shutdown));
    let reader = PacedReader {
        segments: std::collections::VecDeque::from([
            (std::time::Duration::ZERO, encode(&Frame::Ping)),
            (std::time::Duration::from_millis(120), late),
        ]),
        current: std::io::Cursor::new(Vec::new()),
    };
    let out = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    struct SharedOut(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedOut {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    serve_stream(
        reader,
        SharedOut(std::sync::Arc::clone(&out)),
        &ServeOptions {
            executors: 1,
            ..Default::default()
        },
    )
    .expect("daemon must exit cleanly despite the watchdog panic");
    assert_eq!(fires(), 1, "serve.watchdog must actually fire");
    disarm();

    let panics_after = telemetry::global()
        .snapshot()
        .counter("serve.watchdog.panics")
        .unwrap_or(0);
    assert!(
        panics_after > panics_before,
        "serve.watchdog.panics must increment ({panics_before} → {panics_after})"
    );
    let bytes = out.lock().unwrap().clone();
    let mut r = std::io::Cursor::new(bytes);
    let mut replies = Vec::new();
    while let Ok(f) = read_frame(&mut r) {
        replies.push(f);
    }
    assert!(replies.contains(&Frame::Pong));
    assert!(
        replies
            .iter()
            .any(|f| matches!(f, Frame::Result(res) if res.tag == 8)),
        "job submitted after the poisoned tick must still complete: {replies:?}"
    );
}

/// Containment for snapshot restore (`serve.snapshot`): a panic
/// injected at the start of the plan-cache load degrades the daemon to
/// a cold start — it still boots, serves (cache miss), and exits
/// cleanly; the failure is counted in `serve.snapshot.panics`.
#[test]
fn serve_snapshot_fault_degrades_to_cold_start() {
    use jigsaw::core::serve::protocol::{encode, read_frame};
    use jigsaw::core::serve::{serve_stream, Frame, JobRequest, Priority, ServeOptions};

    let _lock = test_guard();
    let _policy = PolicyGuard;
    telemetry::set_enabled(true);
    let coords = jigsaw::core::traj::radial_2d(4, 16, true);
    let values: Vec<C64> = vec![C64::new(1.0, 0.0); coords.len()];
    let req = JobRequest {
        tag: 11,
        priority: Priority::Normal,
        n: 8,
        budget_ms: 0,
        coords,
        values,
    };

    // A perfectly valid snapshot on disk: the injected panic, not file
    // damage, is what must be contained.
    let path =
        std::env::temp_dir().join(format!("jigsaw-chaos-snapshot-{}.snap", std::process::id()));
    std::fs::write(&path, jigsaw::core::serve::encode_snapshot(&[])).unwrap();
    let panics_before = telemetry::global()
        .snapshot()
        .counter("serve.snapshot.panics")
        .unwrap_or(0);
    arm(FaultPlan::once_at(fault::SERVE_SNAPSHOT));
    let mut input = Vec::new();
    input.extend_from_slice(&encode(&Frame::Submit(req)));
    input.extend_from_slice(&encode(&Frame::Shutdown));
    let out = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    struct SharedOut(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedOut {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    serve_stream(
        std::io::Cursor::new(input),
        SharedOut(std::sync::Arc::clone(&out)),
        &ServeOptions {
            executors: 1,
            snapshot_path: Some(path.clone()),
            ..Default::default()
        },
    )
    .expect("daemon must boot cold and exit cleanly despite the load panic");
    assert_eq!(fires(), 1, "serve.snapshot must actually fire");
    disarm();

    let panics_after = telemetry::global()
        .snapshot()
        .counter("serve.snapshot.panics")
        .unwrap_or(0);
    assert!(
        panics_after > panics_before,
        "serve.snapshot.panics must increment ({panics_before} → {panics_after})"
    );
    let bytes = out.lock().unwrap().clone();
    let mut r = std::io::Cursor::new(bytes);
    let mut replies = Vec::new();
    while let Ok(f) = read_frame(&mut r) {
        replies.push(f);
    }
    assert!(
        replies
            .iter()
            .any(|f| matches!(f, Frame::Result(res) if res.tag == 11 && !res.cache_hit)),
        "cold-started daemon must still serve the job: {replies:?}"
    );
    let _ = std::fs::remove_file(&path);
}

/// Every registered site is covered by a test above; this meta-check
/// fails when a new fault point is added without chaos coverage.
#[test]
fn every_registered_site_is_covered() {
    let covered = [
        fault::ENGINE_DISPATCH,
        fault::NUFFT_COIL,
        fault::GRIDDING_CHUNK,
        fault::FFT_PANEL,
        fault::RECON_CG_ITER,
        fault::RECON_NORMAL_OP,
        fault::SERVE_JOB,
        fault::SERVE_CACHE,
        fault::SERVE_SHED,
        fault::SERVE_SNAPSHOT,
        fault::SERVE_WATCHDOG,
    ];
    for site in fault::SITES {
        assert!(
            covered.contains(site),
            "fault site `{site}` has no chaos-suite coverage"
        );
    }
}
