//! Integration tests of the JIGSAW simulator's architectural laws against
//! randomized streams (property-based), plus the Table II regeneration.

use jigsaw::num::C64;
use jigsaw::sim::power::{PowerModel, Variant};
use jigsaw::sim::{Jigsaw2d, Jigsaw3dSlice, JigsawConfig};
use jigsaw_testkit::{cases, Rng};

fn arb_stream(rng: &mut Rng, grid: usize, max_m: usize) -> (Vec<[f64; 2]>, Vec<C64>) {
    let g = grid as f64;
    let m = rng.usize_range(1, max_m);
    let coords = rng.vec(m, |r| [r.f64_range(0.0, g), r.f64_range(0.0, g)]);
    let values = rng.vec(m, |r| {
        C64::new(r.f64_range(-1.0, 1.0), r.f64_range(-1.0, 1.0))
    });
    (coords, values)
}

/// Runtime is M + 12 cycles for EVERY sampling pattern (the paper's
/// trajectory-agnostic guarantee), derived by the cycle-accurate
/// pipeline and matched bit-for-bit by the functional model.
#[test]
fn cycle_accurate_equals_functional() {
    cases!(16, |rng| {
        let (coords, values) = arb_stream(rng, 32, 80);
        let mut hw = Jigsaw2d::new(JigsawConfig::small(32)).unwrap();
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let fast = hw.run(&stream);
        let slow = hw.run_cycle_accurate(&stream);
        assert_eq!(slow.report.compute_cycles, stream.len() as u64 + 12);
        assert_eq!(fast.report.compute_cycles, slow.report.compute_cycles);
        assert_eq!(fast.grid, slow.grid);
    });
}

/// 3-D slice mode: unsorted (M+15)·Nz vs sorted Σ(|bin|+15), with
/// identical grids.
#[test]
fn three_d_cycle_laws() {
    cases!(16, |rng| {
        let m = rng.usize_range(1, 200);
        let g = 16usize;
        let coords: Vec<[f64; 3]> = (0..m)
            .map(|i| {
                let t = i as f64;
                [
                    (t * 0.37).rem_euclid(16.0),
                    (t * 1.23).rem_euclid(16.0),
                    (t * 2.71).rem_euclid(16.0),
                ]
            })
            .collect();
        let values = vec![C64::new(0.5, -0.25); m];
        let mut hw = Jigsaw3dSlice::new(JigsawConfig::small(g)).unwrap();
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let unsorted = hw.run(&stream, false);
        let sorted = hw.run(&stream, true);
        assert_eq!(unsorted.report.compute_cycles, (m as u64 + 15) * g as u64);
        // Every sample lands in exactly Wz = 6 z-bins.
        assert_eq!(sorted.report.compute_cycles, m as u64 * 6 + 15 * g as u64);
        assert_eq!(unsorted.grid, sorted.grid);
    });
}

/// Op counts follow the closed-form model for any stream.
#[test]
fn op_count_model() {
    cases!(16, |rng| {
        let (coords, values) = arb_stream(rng, 64, 120);
        let mut hw = Jigsaw2d::new(JigsawConfig::small(64)).unwrap();
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let run = hw.run(&stream);
        let m = stream.len() as u64;
        assert_eq!(run.report.ops.select_checks, m * 64);
        assert_eq!(run.report.ops.interp_macs, m * 36);
        assert_eq!(run.report.ops.accum_rmw, m * 36);
    });
}

/// Table II regenerates within 1 % from the calibrated decomposition.
#[test]
fn table_ii_regenerates() {
    let rows = PowerModel::calibrated().table_ii();
    let paper = [
        (216.86, 12.20),
        (94.22, 0.42),
        (104.36, 12.42),
        (63.62, 0.64),
    ];
    for ((_, p, a), (pp, pa)) in rows.iter().zip(paper) {
        assert!((p - pp).abs() / pp < 0.01, "{p} vs {pp}");
        assert!((a - pa).abs() / pa < 0.01, "{a} vs {pa}");
    }
}

/// The energy model scales linearly in stream length for a fixed config.
#[test]
fn energy_scales_with_stream() {
    let cfg = JigsawConfig::small(64);
    let model = PowerModel::calibrated();
    let mut hw = Jigsaw2d::new(cfg.clone()).unwrap();
    let mk = |m: usize| {
        let coords: Vec<[f64; 2]> = (0..m)
            .map(|i| [(i as f64 * 0.7) % 64.0, (i as f64 * 1.3) % 64.0])
            .collect();
        let values = vec![C64::one(); m];
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        stream
    };
    let s1 = mk(1000);
    let s2 = mk(2000);
    let e1 = model.energy_joules(&cfg, Variant::TwoD, &hw.run(&s1).report);
    let e2 = model.energy_joules(&cfg, Variant::TwoD, &hw.run(&s2).report);
    let ratio = e2 / e1;
    assert!(
        (1.9..2.1).contains(&ratio),
        "energy should double with M: ratio {ratio}"
    );
}
