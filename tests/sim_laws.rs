//! Integration tests of the JIGSAW simulator's architectural laws against
//! randomized streams (property-based), plus the Table II regeneration.

use jigsaw::num::C64;
use jigsaw::sim::power::{PowerModel, Variant};
use jigsaw::sim::{Jigsaw2d, Jigsaw3dSlice, JigsawConfig};
use proptest::prelude::*;

fn arb_stream(grid: usize, max_m: usize) -> impl Strategy<Value = (Vec<[f64; 2]>, Vec<C64>)> {
    let g = grid as f64;
    prop::collection::vec((0.0..g, 0.0..g, -1.0f64..1.0, -1.0f64..1.0), 1..max_m).prop_map(|v| {
        (
            v.iter().map(|&(x, y, _, _)| [x, y]).collect(),
            v.iter().map(|&(_, _, re, im)| C64::new(re, im)).collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Runtime is M + 12 cycles for EVERY sampling pattern (the paper's
    /// trajectory-agnostic guarantee), derived by the cycle-accurate
    /// pipeline and matched bit-for-bit by the functional model.
    #[test]
    fn cycle_accurate_equals_functional((coords, values) in arb_stream(32, 80)) {
        let mut hw = Jigsaw2d::new(JigsawConfig::small(32)).unwrap();
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let fast = hw.run(&stream);
        let slow = hw.run_cycle_accurate(&stream);
        prop_assert_eq!(slow.report.compute_cycles, stream.len() as u64 + 12);
        prop_assert_eq!(fast.report.compute_cycles, slow.report.compute_cycles);
        prop_assert_eq!(fast.grid, slow.grid);
    }

    /// 3-D slice mode: unsorted (M+15)·Nz vs sorted Σ(|bin|+15), with
    /// identical grids.
    #[test]
    fn three_d_cycle_laws(m in 1usize..200) {
        let g = 16usize;
        let coords: Vec<[f64; 3]> = (0..m)
            .map(|i| {
                let t = i as f64;
                [
                    (t * 0.37).rem_euclid(16.0),
                    (t * 1.23).rem_euclid(16.0),
                    (t * 2.71).rem_euclid(16.0),
                ]
            })
            .collect();
        let values = vec![C64::new(0.5, -0.25); m];
        let mut hw = Jigsaw3dSlice::new(JigsawConfig::small(g)).unwrap();
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let unsorted = hw.run(&stream, false);
        let sorted = hw.run(&stream, true);
        prop_assert_eq!(
            unsorted.report.compute_cycles,
            (m as u64 + 15) * g as u64
        );
        // Every sample lands in exactly Wz = 6 z-bins.
        prop_assert_eq!(
            sorted.report.compute_cycles,
            m as u64 * 6 + 15 * g as u64
        );
        prop_assert_eq!(unsorted.grid, sorted.grid);
    }

    /// Op counts follow the closed-form model for any stream.
    #[test]
    fn op_count_model((coords, values) in arb_stream(64, 120)) {
        let mut hw = Jigsaw2d::new(JigsawConfig::small(64)).unwrap();
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        let run = hw.run(&stream);
        let m = stream.len() as u64;
        prop_assert_eq!(run.report.ops.select_checks, m * 64);
        prop_assert_eq!(run.report.ops.interp_macs, m * 36);
        prop_assert_eq!(run.report.ops.accum_rmw, m * 36);
    }
}

/// Table II regenerates within 1 % from the calibrated decomposition.
#[test]
fn table_ii_regenerates() {
    let rows = PowerModel::calibrated().table_ii();
    let paper = [(216.86, 12.20), (94.22, 0.42), (104.36, 12.42), (63.62, 0.64)];
    for ((_, p, a), (pp, pa)) in rows.iter().zip(paper) {
        assert!((p - pp).abs() / pp < 0.01, "{p} vs {pp}");
        assert!((a - pa).abs() / pa < 0.01, "{a} vs {pa}");
    }
}

/// The energy model scales linearly in stream length for a fixed config.
#[test]
fn energy_scales_with_stream() {
    let cfg = JigsawConfig::small(64);
    let model = PowerModel::calibrated();
    let mut hw = Jigsaw2d::new(cfg.clone()).unwrap();
    let mk = |m: usize| {
        let coords: Vec<[f64; 2]> = (0..m)
            .map(|i| [(i as f64 * 0.7) % 64.0, (i as f64 * 1.3) % 64.0])
            .collect();
        let values = vec![C64::one(); m];
        let (stream, _) = hw.quantize_inputs(&coords, &values).unwrap();
        stream
    };
    let s1 = mk(1000);
    let s2 = mk(2000);
    let e1 = model.energy_joules(&cfg, Variant::TwoD, &hw.run(&s1).report);
    let e2 = model.energy_joules(&cfg, Variant::TwoD, &hw.run(&s2).report);
    let ratio = e2 / e1;
    assert!(
        (1.9..2.1).contains(&ratio),
        "energy should double with M: ratio {ratio}"
    );
}
