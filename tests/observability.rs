//! Property tests for the live-introspection substrate: the rolling
//! [`WindowedHistogram`] (epoch aging, window-sum consistency) and the
//! fixed-capacity flight-recorder ring (capacity bound, FIFO order,
//! no loss below capacity under concurrent writers).
//!
//! Both structures drive their clocks explicitly here (`record_at` /
//! `snapshot_at`), so every property is deterministic.

use jigsaw::telemetry::{FlightEvent, FlightKind, FlightRecorder, WindowedHistogram};
use jigsaw_testkit::cases;

#[test]
fn window_sum_equals_sum_of_live_epochs() {
    cases!(64, |rng| {
        let epoch_ns = rng.usize_range(1_000, 1_000_000) as u64;
        let live = rng.usize_range(2, 7);
        let w = WindowedHistogram::new(epoch_ns, live);
        // Monotonically advancing clock over a random number of epochs.
        let span_epochs = rng.usize_range(1, 4 * live);
        let nsamples = rng.usize_range(1, 200);
        let mut samples: Vec<(u64, u64)> = (0..nsamples)
            .map(|_| {
                let t = rng.usize_range(0, span_epochs * epoch_ns as usize) as u64;
                let v = rng.usize_range(0, 1 << 20) as u64;
                (t, v)
            })
            .collect();
        samples.sort_unstable();
        for &(t, v) in &samples {
            w.record_at(t, v);
        }
        let now = samples.last().map(|&(t, _)| t).unwrap_or(0);
        let snap = w.snapshot_at(now);
        // A sample is live iff its epoch lies within the last `live`
        // epochs ending at `now`'s epoch.
        let cur = now / epoch_ns;
        let oldest = cur.saturating_sub(live as u64 - 1);
        let live_samples: Vec<u64> = samples
            .iter()
            .filter(|&&(t, _)| (t / epoch_ns) >= oldest)
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(snap.count, live_samples.len() as u64, "window count");
        assert_eq!(snap.sum, live_samples.iter().sum::<u64>(), "window sum");
        // Bucket totals must account for every live sample.
        let bucket_total: u64 = snap.buckets.iter().map(|b| b.2).sum();
        assert_eq!(bucket_total, snap.count);
    });
}

#[test]
fn expired_epochs_drop_out_of_the_window() {
    cases!(32, |rng| {
        let epoch_ns = rng.usize_range(1_000, 100_000) as u64;
        let live = rng.usize_range(2, 6);
        let w = WindowedHistogram::new(epoch_ns, live);
        let v = rng.usize_range(1, 1 << 16) as u64;
        w.record_at(0, v);
        // Still visible at the last live epoch...
        let last_live = (live as u64 - 1) * epoch_ns;
        assert_eq!(w.snapshot_at(last_live).count, 1);
        assert_eq!(w.snapshot_at(last_live).sum, v);
        // ...gone one epoch later, and stays gone arbitrarily far out.
        assert_eq!(w.snapshot_at(last_live + epoch_ns).count, 0);
        let far = rng.usize_range(live + 1, 1_000) as u64 * epoch_ns;
        assert_eq!(w.snapshot_at(far).count, 0);
    });
}

fn event(i: u64) -> FlightEvent {
    FlightEvent {
        ts_ns: i,
        kind: FlightKind::JobAdmitted,
        request_id: i,
        tag: i,
        detail: String::new(),
    }
}

#[test]
fn flight_ring_is_capacity_bounded_and_fifo() {
    cases!(32, |rng| {
        let capacity = rng.usize_range(1, 64);
        let total = rng.usize_range(1, 3 * capacity + 1);
        let ring = FlightRecorder::new(capacity);
        for i in 0..total as u64 {
            ring.record(event(i));
        }
        assert_eq!(ring.recorded(), total as u64);
        let tail = ring.tail(capacity);
        assert_eq!(tail.len(), total.min(capacity), "capacity bound");
        // Oldest-first: exactly the last `len` events, in record order.
        let first = total as u64 - tail.len() as u64;
        for (k, e) in tail.iter().enumerate() {
            assert_eq!(e.request_id, first + k as u64, "FIFO order");
        }
        // A shorter tail takes the newest suffix.
        let short = ring.tail(tail.len().div_ceil(2));
        assert_eq!(
            short.last().map(|e| e.request_id),
            tail.last().map(|e| e.request_id)
        );
    });
}

#[test]
fn flight_ring_loses_nothing_below_capacity_under_concurrent_writers() {
    cases!(16, |rng| {
        let writers = rng.usize_range(2, 6);
        let per_writer = rng.usize_range(1, 40);
        let ring = std::sync::Arc::new(FlightRecorder::new(writers * per_writer));
        std::thread::scope(|s| {
            for t in 0..writers as u64 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..per_writer as u64 {
                        ring.record(event(t * 1_000 + i));
                    }
                });
            }
        });
        let total = writers * per_writer;
        assert_eq!(ring.recorded(), total as u64);
        let tail = ring.tail(total);
        assert_eq!(tail.len(), total, "no loss below capacity");
        // Every event is present exactly once, and each writer's own
        // events appear in its program order.
        for t in 0..writers as u64 {
            let mine: Vec<u64> = tail
                .iter()
                .filter(|e| e.request_id / 1_000 == t)
                .map(|e| e.request_id % 1_000)
                .collect();
            let expect: Vec<u64> = (0..per_writer as u64).collect();
            assert_eq!(mine, expect, "writer {t} events lost or reordered");
        }
    });
}
