//! Multi-coil batch correctness through the public API: the batched
//! adjoint paths (sequential `adjoint_batch` and pool-parallel
//! `adjoint_batch_planned`) must reproduce N independent single-coil
//! `adjoint` calls **exactly** (`rel_l2 == 0` in f64), and the degenerate
//! shapes — empty batch, single sample, single coil — must behave.

use jigsaw::core::gridding::{SerialGridder, SliceDiceGridder, SliceDiceMode};
use jigsaw::core::metrics::rel_l2;
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;
use jigsaw_testkit::{cases, Rng};

fn problem(rng: &mut Rng, n: usize, m: usize, coils: usize) -> (Vec<[f64; 2]>, Vec<Vec<C64>>) {
    let coords: Vec<[f64; 2]> = (0..m)
        .map(|_| [rng.f64_range(-0.5, 0.5), rng.f64_range(-0.5, 0.5)])
        .collect();
    let _ = n;
    let batches: Vec<Vec<C64>> = (0..coils)
        .map(|_| {
            (0..m)
                .map(|_| C64::new(rng.f64_range(-1.0, 1.0), rng.f64_range(-1.0, 1.0)))
                .collect()
        })
        .collect();
    (coords, batches)
}

/// `adjoint_batch` over N coils equals N independent `adjoint` calls.
#[test]
fn sequential_batch_equals_singles() {
    cases!(8, |rng| {
        let n = 16usize;
        let m = rng.usize_range(1, 200);
        let coils = rng.usize_range(1, 6);
        let (coords, batches) = problem(rng, n, m, coils);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let refs: Vec<&[C64]> = batches.iter().map(|b| b.as_slice()).collect();

        let batch = plan.adjoint_batch(&coords, &refs, &SerialGridder).unwrap();
        assert_eq!(batch.len(), coils);
        for (c, out) in batch.iter().enumerate() {
            let single = plan.adjoint(&coords, &batches[c], &SerialGridder).unwrap();
            assert_eq!(rel_l2(&out.image, &single.image), 0.0, "coil {c}");
        }
    });
}

/// The planned pool-parallel batch equals N independent `adjoint` calls,
/// bitwise, for every coil count including ≥ 8 (the bench configuration).
#[test]
fn planned_batch_equals_singles_bitwise() {
    cases!(6, |rng| {
        let n = 16usize;
        let m = rng.usize_range(1, 150);
        let coils = *rng.choose(&[1usize, 2, 8, 9]);
        let (coords, batches) = problem(rng, n, m, coils);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let refs: Vec<&[C64]> = batches.iter().map(|b| b.as_slice()).collect();

        let traj = plan.plan_trajectory(&coords).unwrap();
        assert_eq!(traj.len(), m);
        let batch = plan.adjoint_batch_planned(&traj, &refs).unwrap();
        assert_eq!(batch.len(), coils);
        for (c, out) in batch.iter().enumerate() {
            let single = plan.adjoint(&coords, &batches[c], &SerialGridder).unwrap();
            assert_eq!(rel_l2(&out.image, &single.image), 0.0, "coil {c}");
            for (a, b) in out.image.iter().zip(single.image.iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    });
}

/// Batching does not care which engine produced the singles: parallel
/// engines agree with the planned batch bitwise too (they share the
/// serial accumulation order per output point).
#[test]
fn planned_batch_matches_parallel_single_engine() {
    cases!(4, |rng| {
        let n = 16usize;
        let m = rng.usize_range(1, 150);
        let (coords, batches) = problem(rng, n, m, 3);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let refs: Vec<&[C64]> = batches.iter().map(|b| b.as_slice()).collect();
        let traj = plan.plan_trajectory(&coords).unwrap();
        let batch = plan.adjoint_batch_planned(&traj, &refs).unwrap();
        let engine = SliceDiceGridder::new(SliceDiceMode::ColumnParallel);
        for (c, out) in batch.iter().enumerate() {
            let single = plan.adjoint(&coords, &batches[c], &engine).unwrap();
            assert_eq!(rel_l2(&out.image, &single.image), 0.0, "coil {c}");
        }
    });
}

/// Degenerate shapes: empty batch → empty output; a single sample still
/// grids correctly; zero-value coils produce exactly zero images.
#[test]
fn degenerate_batches() {
    let n = 16usize;
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
    let coords = vec![[0.123f64, -0.321]];
    let traj = plan.plan_trajectory(&coords).unwrap();

    // Empty batch.
    let out = plan.adjoint_batch_planned(&traj, &[]).unwrap();
    assert!(out.is_empty());
    let out = plan.adjoint_batch(&coords, &[], &SerialGridder).unwrap();
    assert!(out.is_empty());

    // Single sample, single coil: matches the unbatched path.
    let values = vec![C64::new(0.5, -0.25)];
    let single = plan.adjoint(&coords, &values, &SerialGridder).unwrap();
    let batched = plan
        .adjoint_batch_planned(&traj, &[values.as_slice()])
        .unwrap();
    assert_eq!(batched.len(), 1);
    assert_eq!(rel_l2(&batched[0].image, &single.image), 0.0);
    assert_eq!(batched[0].grid_stats.samples, 1);

    // A zero coil in the middle of real coils comes back exactly zero.
    let zero = vec![C64::zeroed()];
    let mixed = plan
        .adjoint_batch_planned(
            &traj,
            &[values.as_slice(), zero.as_slice(), values.as_slice()],
        )
        .unwrap();
    assert!(mixed[1].image.iter().all(|z| z.re == 0.0 && z.im == 0.0));
    assert_eq!(rel_l2(&mixed[0].image, &mixed[2].image), 0.0);

    // Mismatched value length is rejected, not truncated.
    let short: Vec<C64> = vec![];
    assert!(plan
        .adjoint_batch_planned(&traj, &[short.as_slice()])
        .is_err());
}

/// The planned forward batch equals per-image `forward` calls exactly.
#[test]
fn planned_forward_batch_equals_singles() {
    cases!(4, |rng| {
        let n = 16usize;
        let m = rng.usize_range(1, 120);
        let coords: Vec<[f64; 2]> = (0..m)
            .map(|_| [rng.f64_range(-0.5, 0.5), rng.f64_range(-0.5, 0.5)])
            .collect();
        let images: Vec<Vec<C64>> = (0..3)
            .map(|_| {
                (0..n * n)
                    .map(|_| C64::new(rng.f64_range(-1.0, 1.0), rng.f64_range(-1.0, 1.0)))
                    .collect()
            })
            .collect();
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let refs: Vec<&[C64]> = images.iter().map(|b| b.as_slice()).collect();
        let traj = plan.plan_trajectory(&coords).unwrap();
        let batch = plan.forward_batch_planned(&refs, &traj).unwrap();
        for (i, out) in batch.iter().enumerate() {
            let single = plan.forward(&images[i], &coords).unwrap();
            assert_eq!(rel_l2(&out.samples, &single.samples), 0.0, "image {i}");
        }
    });
}
