//! Property suite for the Toeplitz normal-operator fast path.
//!
//! Graduates the old in-crate `toeplitz_path_matches_nufft_path` check
//! into randomized properties: across trajectory families (radial,
//! spiral, random), dimensions (1-D and 2-D), and density weightings,
//! the gridding-free Toeplitz operator must agree with the explicit
//! `AᴴWA` forward/adjoint composition — both as a raw operator and
//! through the full CG solve — and the serve cache must never alias
//! kernels whose density weights differ by even one ULP.

use std::sync::Arc;

use jigsaw::core::engine::WorkerPool;
use jigsaw::core::gridding::SliceDiceGridder;
use jigsaw::core::metrics::rel_l2;
use jigsaw::core::recon::{cg_solve, CgOptions, NormalOp, NormalOpKind};
use jigsaw::core::sense::{acquire, cg_sense_with, CoilMaps};
use jigsaw::core::serve::PlanCache;
use jigsaw::core::toeplitz::ToeplitzOperator;
use jigsaw::core::{traj, NufftConfig, NufftPlan};
use jigsaw::num::C64;
use jigsaw_testkit::{cases, Rng};

/// Agreement tolerance between the Toeplitz path and the gridded
/// forward/adjoint composition. Both paths share one gridding kernel, so
/// the residual is aliasing from the finite oversampled grid — small but
/// not machine epsilon.
const TOL: f64 = 5e-2;

fn bits_eq(a: &[C64], b: &[C64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// One random trajectory from a named family, scaled to grid `n`.
fn arb_traj_2d(rng: &mut Rng, n: usize) -> (&'static str, Vec<[f64; 2]>) {
    match rng.usize_range(0, 3) {
        0 => {
            let spokes = rng.usize_range(6, 14);
            ("radial", traj::radial_2d(spokes, 2 * n, rng.bool(0.5)))
        }
        1 => {
            let arms = rng.usize_range(2, 6);
            ("spiral", traj::spiral_2d(arms, 2 * n, 3.0))
        }
        _ => {
            let m = rng.usize_range(2 * n * n / 3, 2 * n * n);
            (
                "random",
                scale_to_grid(traj::random_nd::<2>(m, rng.u64()), n),
            )
        }
    }
}

/// `random_nd` emits coordinates in `[0, 1)`; map them onto `[0, n)`
/// like the other generators.
fn scale_to_grid<const D: usize>(mut coords: Vec<[f64; D]>, n: usize) -> Vec<[f64; D]> {
    let span = n as f64;
    for c in &mut coords {
        for x in c.iter_mut() {
            *x *= span;
        }
    }
    coords
}

fn arb_image(rng: &mut Rng, len: usize) -> Vec<C64> {
    rng.vec(len, |r| {
        C64::new(r.f64_range(-1.0, 1.0), r.f64_range(-1.0, 1.0))
    })
}

fn arb_weights(rng: &mut Rng, m: usize) -> Vec<f64> {
    if rng.bool(0.5) {
        Vec::new()
    } else {
        let mut r2 = Rng::new(rng.u64());
        (0..m).map(|_| r2.f64_range(0.05, 1.0)).collect()
    }
}

/// Explicit gridded normal operator: `x → Aᴴ W A x` via one forward and
/// one adjoint NuFFT — the exact composition the Toeplitz kernel
/// replaces.
fn gridded_normal<const D: usize>(
    plan: &NufftPlan<f64, D>,
    coords: &[[f64; D]],
    weights: &[f64],
    gridder: &SliceDiceGridder,
    x: &[C64],
) -> Vec<C64> {
    let mut samples = plan.forward(x, coords).unwrap().samples;
    if !weights.is_empty() {
        for (s, &w) in samples.iter_mut().zip(weights) {
            *s = s.scale(w);
        }
    }
    plan.adjoint(coords, &samples, gridder).unwrap().image
}

/// 2-D property: for every trajectory family and weighting, the Toeplitz
/// operator agrees with the gridded composition on random images.
#[test]
fn toeplitz_matches_gridded_normal_op_2d() {
    cases!(12, |rng| {
        let n = *rng.choose(&[8, 12, 16]);
        let (family, coords) = arb_traj_2d(rng, n);
        let weights = arb_weights(rng, coords.len());
        let cfg = NufftConfig::with_n(n);
        let plan = NufftPlan::<f64, 2>::new(cfg.clone()).unwrap();
        let gridder = SliceDiceGridder::default();
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &weights, &gridder).unwrap();

        let x = arb_image(rng, n * n);
        let direct = gridded_normal(&plan, &coords, &weights, &gridder, &x);
        let fast = top.apply(&x).unwrap();
        let err = rel_l2(&fast, &direct);
        assert!(
            err < TOL,
            "{family} n={n} m={} weighted={}: rel_l2 {err:.3e}",
            coords.len(),
            !weights.is_empty()
        );
    });
}

/// 1-D property: same agreement on random 1-D trajectories.
#[test]
fn toeplitz_matches_gridded_normal_op_1d() {
    cases!(12, |rng| {
        let n = *rng.choose(&[16, 24, 32]);
        let m = rng.usize_range(2 * n, 4 * n);
        let coords = scale_to_grid(traj::random_nd::<1>(m, rng.u64()), n);
        let weights = arb_weights(rng, m);
        let cfg = NufftConfig::with_n(n);
        let plan = NufftPlan::<f64, 1>::new(cfg.clone()).unwrap();
        let gridder = SliceDiceGridder::default();
        let top = ToeplitzOperator::<1>::build(&cfg, &coords, &weights, &gridder).unwrap();

        let x = arb_image(rng, n);
        let direct = gridded_normal(&plan, &coords, &weights, &gridder, &x);
        let fast = top.apply(&x).unwrap();
        let err = rel_l2(&fast, &direct);
        assert!(err < TOL, "1-D n={n} m={m}: rel_l2 {err:.3e}");
    });
}

/// The full CG solve through `NormalOp::Toeplitz` converges to the same
/// image as the gridded `NormalOp::Nufft` closure.
#[test]
fn cg_through_toeplitz_matches_gridded_cg() {
    cases!(8, |rng| {
        let n = *rng.choose(&[8, 12]);
        // Well-sampled systems (M ≥ 2N²): with fewer samples the normal
        // system is rank-deficient and CG amplifies the (bounded)
        // operator discrepancy arbitrarily in the null space — the
        // raw-operator properties above cover that regime instead.
        let (family, coords) = match rng.usize_range(0, 3) {
            0 => (
                "radial",
                traj::radial_2d(rng.usize_range(n, 2 * n), 2 * n, rng.bool(0.5)),
            ),
            1 => (
                "spiral",
                traj::spiral_2d(rng.usize_range(n, 2 * n), 2 * n, 3.0),
            ),
            _ => (
                "random",
                scale_to_grid(
                    traj::random_nd::<2>(rng.usize_range(2 * n * n, 3 * n * n), rng.u64()),
                    n,
                ),
            ),
        };
        let weights = arb_weights(rng, coords.len());
        let cfg = NufftConfig::with_n(n);
        let plan = NufftPlan::<f64, 2>::new(cfg.clone()).unwrap();
        let gridder = SliceDiceGridder::default();

        let data: Vec<C64> = (0..coords.len())
            .map(|i| C64::new((i as f64 * 0.11).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let weighted: Vec<C64> = if weights.is_empty() {
            data.clone()
        } else {
            data.iter()
                .zip(&weights)
                .map(|(d, &w)| d.scale(w))
                .collect()
        };
        let rhs = plan.adjoint(&coords, &weighted, &gridder).unwrap().image;
        // λ scales with M (the normal operator's eigenvalues are O(M))
        // so the system stays well-conditioned and CG does not amplify
        // the (bounded) operator discrepancy — the raw-operator
        // properties above pin the discrepancy itself.
        let opts = CgOptions {
            max_iterations: 10,
            tolerance: 1e-10,
            lambda: 0.02 * coords.len() as f64,
            ..Default::default()
        };

        let gridded = cg_solve(
            &NormalOp::Nufft {
                plan: &plan,
                coords: &coords,
                gridder: &gridder,
                weights: &weights,
            },
            &rhs,
            &opts,
        )
        .unwrap();
        let top =
            Arc::new(ToeplitzOperator::<2>::build(&cfg, &coords, &weights, &gridder).unwrap());
        let fast = cg_solve(&NormalOp::Toeplitz(top), &rhs, &opts).unwrap();
        let err = rel_l2(&fast.image, &gridded.image);
        assert!(
            err < TOL,
            "{family} n={n}: CG images differ, rel_l2 {err:.3e}"
        );
    });
}

/// CG-SENSE through the batched Toeplitz kernel agrees with the gridded
/// per-coil closure on synthetic multi-coil acquisitions.
#[test]
fn cg_sense_toeplitz_matches_gridded() {
    cases!(4, |rng| {
        let n = 12;
        let coils = rng.usize_range(2, 5);
        let spokes = rng.usize_range(8, 14);
        let coords = traj::radial_2d(spokes, 2 * n, true);
        let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
        let gridder = SliceDiceGridder::default();
        let maps = CoilMaps::synthetic(n, coils);
        let truth: Vec<C64> = arb_image(rng, n * n);
        let data = acquire(&plan, &maps, &truth, &coords).unwrap();
        let opts = CgOptions {
            max_iterations: 8,
            tolerance: 1e-10,
            lambda: 1e-4,
            ..Default::default()
        };

        let gridded = cg_sense_with(
            &plan,
            &maps,
            &data,
            &coords,
            &gridder,
            &opts,
            NormalOpKind::Gridded,
        )
        .unwrap();
        let fast = cg_sense_with(
            &plan,
            &maps,
            &data,
            &coords,
            &gridder,
            &opts,
            NormalOpKind::Toeplitz,
        )
        .unwrap();
        let err = rel_l2(&fast.image, &gridded.image);
        assert!(
            err < TOL,
            "coils={coils} spokes={spokes}: CG-SENSE images differ, rel_l2 {err:.3e}"
        );
    });
}

/// Applying the operator is bitwise deterministic across worker counts:
/// the FFT panel partition depends only on the grid shape, never on the
/// executor, so 1, 2, and N workers all produce identical bits.
#[test]
fn apply_is_bitwise_stable_across_worker_counts() {
    cases!(4, |rng| {
        let n = 16;
        let (_, coords) = arb_traj_2d(rng, n);
        let cfg = NufftConfig::with_n(n);
        let gridder = SliceDiceGridder::default();
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &gridder).unwrap();
        let x = arb_image(rng, n * n);

        let reference = top.apply(&x).unwrap();
        for workers in [1, 2, 4] {
            let pool = WorkerPool::new(workers);
            let y = top.apply_with(&pool, &x).unwrap();
            assert!(
                bits_eq(&reference, &y),
                "output must be bitwise stable at {workers} workers"
            );
        }
    });
}

/// Cache-aliasing regression: two weight vectors that differ by a single
/// ULP in a single element must occupy distinct cache entries — a hit on
/// one can never serve the other's kernel.
#[test]
fn one_ulp_weight_perturbation_never_aliases_cached_kernels() {
    cases!(6, |rng| {
        let n = 8;
        let coords = traj::radial_2d(8, 2 * n, true);
        let mut weights: Vec<f64> = {
            let mut r2 = Rng::new(rng.u64());
            (0..coords.len()).map(|_| r2.f64_range(0.1, 1.0)).collect()
        };
        let cfg = NufftConfig::with_n(n);
        let gridder = SliceDiceGridder::default();
        let cache = PlanCache::new(8);

        let (a, hit_a) = cache
            .get_or_build_toeplitz(&cfg, &coords, &weights, &gridder)
            .unwrap();
        assert!(!hit_a, "first build must be a miss");
        let (a2, hit_a2) = cache
            .get_or_build_toeplitz(&cfg, &coords, &weights, &gridder)
            .unwrap();
        assert!(hit_a2, "identical weights must hit");
        assert!(Arc::ptr_eq(&a, &a2), "hit must share the cached kernel");

        // Perturb one weight by exactly one ULP.
        let idx = rng.usize_range(0, weights.len());
        weights[idx] = f64::from_bits(weights[idx].to_bits() + 1);
        let (b, hit_b) = cache
            .get_or_build_toeplitz(&cfg, &coords, &weights, &gridder)
            .unwrap();
        assert!(!hit_b, "1-ULP perturbed weights must miss, not alias");
        assert!(!Arc::ptr_eq(&a, &b), "perturbed kernel must be distinct");
    });
}

/// The batched entry point is bitwise identical to per-coil single
/// applies — amortizing the embed/extract must not change a single bit.
#[test]
fn apply_batch_is_bitwise_identical_to_singles() {
    cases!(4, |rng| {
        let n = 12;
        let (_, coords) = arb_traj_2d(rng, n);
        let cfg = NufftConfig::with_n(n);
        let gridder = SliceDiceGridder::default();
        let top = ToeplitzOperator::<2>::build(&cfg, &coords, &[], &gridder).unwrap();

        let coils: Vec<Vec<C64>> = (0..4).map(|_| arb_image(rng, n * n)).collect();
        let refs: Vec<&[C64]> = coils.iter().map(|c| c.as_slice()).collect();
        let batched = top.apply_batch(&refs).unwrap();
        for (coil, fast) in coils.iter().zip(&batched) {
            let single = top.apply(coil).unwrap();
            assert!(
                bits_eq(&single, fast),
                "batch and single applies must match"
            );
        }
    });
}
