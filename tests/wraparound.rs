//! Wrap-around regression tests for the window decomposition and the
//! row-major scatter (`sample_windows` / `scatter_rowmajor`).
//!
//! Three edge families, each a past or potential off-by-one site:
//!
//! * coordinates within `W − 1` of the grid boundary, where the window
//!   spans the torus seam and grid indices must wrap `G−1 → 0`;
//! * coordinates whose window base lands **exactly on a tile seam**
//!   (`base mod T == 0`), where the select-unit wrap test `rel < p`
//!   flips for every pipeline but 0;
//! * the decrement-on-wrap tile index, which must step `q → q − 1`
//!   **mod tiles-per-dim** (tile 0 wraps to the last tile, not to −1).

use jigsaw::core::config::GridParams;
use jigsaw::core::decomp::Decomposer;
use jigsaw::core::gridding::{sample_windows, scatter_rowmajor, Gridder, SerialGridder};
use jigsaw::core::kernel::KernelKind;
use jigsaw::core::lut::KernelLut;
use jigsaw::num::C64;
use jigsaw_testkit::{cases, Rng};

fn params(grid: usize, width: usize, tile: usize) -> GridParams {
    GridParams {
        grid,
        width,
        table_oversampling: 32,
        tile,
        kernel: KernelKind::Auto.resolve(width, 2.0),
    }
}

fn bits(grid: &[C64]) -> Vec<(u64, u64)> {
    grid.iter()
        .map(|z| (z.re.to_bits(), z.im.to_bits()))
        .collect()
}

/// A coordinate within `W − 1` of either grid edge, in any dimension.
fn border_coord(rng: &mut Rng, g: f64, w: f64) -> f64 {
    let off = rng.f64_range(0.0, w - 1.0);
    if rng.bool(0.5) {
        off
    } else {
        (g - off).min(g * (1.0 - f64::EPSILON))
    }
}

/// Window indices of boundary samples wrap onto the torus: every index
/// stays in `[0, G)` and equals `(base − j) mod G` exactly.
#[test]
fn boundary_windows_wrap_onto_torus() {
    cases!(64, |rng| {
        let width = rng.usize_range(2, 9);
        let p = params(32, width, 8);
        let dec = Decomposer::new(&p);
        let lut = KernelLut::from_params(&p);
        let c = [
            border_coord(rng, 32.0, width as f64),
            border_coord(rng, 32.0, width as f64),
        ];
        let (wins, decs) = sample_windows(&dec, &lut, &c);
        for d in 0..2 {
            for j in 0..width {
                let idx = wins[d].idx[j];
                assert!(idx < 32, "index {idx} escaped the grid at c={c:?}");
                let expect = (decs[d].base + 32 - j as u32) % 32;
                assert_eq!(idx, expect, "window point {j} of dim {d} at c={c:?}");
            }
        }
    });
}

/// Gridding is torus-equivariant: shifting every coordinate by an integer
/// lattice vector cyclically shifts the output grid, **bitwise**. This
/// pins the boundary-wrap arithmetic to the (well-tested) interior path.
#[test]
fn boundary_scatter_equals_shifted_interior_scatter() {
    cases!(32, |rng| {
        let g = 32usize;
        let width = rng.usize_range(2, 9);
        let p = params(g, width, 8);
        let dec = Decomposer::new(&p);
        let lut = KernelLut::from_params(&p);
        let m = rng.usize_range(1, 40);
        // Samples clustered around the origin corner → wrapping windows.
        let coords: Vec<[f64; 2]> = (0..m)
            .map(|_| {
                [
                    border_coord(rng, g as f64, width as f64),
                    border_coord(rng, g as f64, width as f64),
                ]
            })
            .collect();
        let values: Vec<C64> = (0..m)
            .map(|_| C64::new(rng.f64_range(-1.0, 1.0), rng.f64_range(-1.0, 1.0)))
            .collect();
        let shift = [rng.usize_range(1, g), rng.usize_range(1, g)];

        let scatter = |cs: &[[f64; 2]]| {
            let mut out = vec![C64::zeroed(); g * g];
            for (c, &v) in cs.iter().zip(values.iter()) {
                let (wins, _) = sample_windows(&dec, &lut, c);
                scatter_rowmajor(g, width, &wins, v, &mut out);
            }
            out
        };

        let near_edge = scatter(&coords);
        let shifted_coords: Vec<[f64; 2]> = coords
            .iter()
            .map(|c| {
                [
                    (c[0] + shift[0] as f64).rem_euclid(g as f64),
                    (c[1] + shift[1] as f64).rem_euclid(g as f64),
                ]
            })
            .collect();
        let interior = scatter(&shifted_coords);
        // interior[(r+sr)%g][(c+sc)%g] must equal near_edge[r][c] bitwise.
        for r in 0..g {
            for cidx in 0..g {
                let a = near_edge[r * g + cidx];
                let b = interior[((r + shift[0]) % g) * g + (cidx + shift[1]) % g];
                assert_eq!(
                    (a.re.to_bits(), a.im.to_bits()),
                    (b.re.to_bits(), b.im.to_bits()),
                    "shift {shift:?} broke torus equivariance at ({r},{cidx})"
                );
            }
        }
    });
}

/// Window base exactly on a tile seam (`base mod T == 0`): the window's
/// other `W − 1` points live in the *previous* tile, and the select unit
/// must report a wrap for every affected pipeline except pipeline 0.
#[test]
fn tile_seam_rel_zero_wraps_all_but_pipeline_zero() {
    let g = 64usize;
    for tile in [8u32, 16] {
        for width in 2..=8usize {
            let p = params(g, width, tile as usize);
            let dec = Decomposer::new(&p);
            for seam in (0..g as u32).step_by(tile as usize) {
                // Choose u so that base = floor(u + W/2) = seam exactly.
                let u = seam as f64 - width as f64 / 2.0;
                let d = dec.decompose(dec.quantize(u));
                assert_eq!(d.base, seam, "u={u} width={width}");
                assert_eq!(d.rel, 0, "seam base must have rel 0");
                assert_eq!(d.tile, seam / tile);
                for pipe in 0..tile {
                    let dist = dec.forward_distance(d.rel, pipe);
                    if !dec.affects(dist) {
                        continue;
                    }
                    if pipe == 0 {
                        assert!(!dec.wrapped(d.rel, pipe));
                        assert_eq!(dec.tile_for_pipeline(&d, pipe), d.tile);
                    } else {
                        assert!(dec.wrapped(d.rel, pipe), "pipe {pipe} must wrap");
                        let expect = (d.tile + dec.tiles_per_dim() - 1) % dec.tiles_per_dim();
                        assert_eq!(dec.tile_for_pipeline(&d, pipe), expect);
                    }
                    // The wrapped tile still addresses the correct grid
                    // point: q'·T + p == (base − dist) mod G.
                    let q = dec.tile_for_pipeline(&d, pipe);
                    assert_eq!(q * tile + pipe, (d.base + g as u32 - dist) % g as u32);
                }
            }
        }
    }
}

/// Tile index decrements modulo tiles-per-dim on wrap: a window whose
/// base sits in tile 0 reaches back into the *last* tile, never tile −1.
#[test]
fn wrap_from_tile_zero_reaches_last_tile() {
    cases!(64, |rng| {
        let g = 32u32;
        let tile = 8u32;
        let width = rng.usize_range(2, 9) as u32;
        let p = params(g as usize, width as usize, tile as usize);
        let dec = Decomposer::new(&p);
        // base ∈ [0, W−1): some window points must wrap below zero.
        let base = rng.usize_range(0, width as usize) as u32;
        let u = base as f64 - width as f64 / 2.0 + rng.f64_range(0.0, 0.99);
        let d = dec.decompose(dec.quantize(u));
        if d.tile != 0 {
            return; // quantization rounded up to the next tile; skip
        }
        let tiles = dec.tiles_per_dim();
        let mut saw_wrap = false;
        for pipe in 0..tile {
            let dist = dec.forward_distance(d.rel, pipe);
            if !dec.affects(dist) {
                continue;
            }
            let q = dec.tile_for_pipeline(&d, pipe);
            if dec.wrapped(d.rel, pipe) {
                saw_wrap = true;
                assert_eq!(q, tiles - 1, "tile 0 must wrap to the last tile");
            } else {
                assert_eq!(q, 0);
            }
            assert!(q < tiles, "tile index escaped [0, tiles)");
        }
        if d.rel < width - 1 {
            assert!(saw_wrap, "base {} rel {} should wrap", d.base, d.rel);
        }
    });
}

/// `sample_windows` + `scatter_rowmajor` on seam/boundary coordinates is
/// the same operator the serial engine applies — the regression harness
/// for any future fast-path change to either helper.
#[test]
fn seam_scatter_matches_serial_engine() {
    cases!(32, |rng| {
        let g = 32usize;
        let width = rng.usize_range(2, 9);
        let tile = *rng.choose(&[8usize, 16]);
        let p = params(g, width, tile);
        let dec = Decomposer::new(&p);
        let lut = KernelLut::from_params(&p);
        // Mix of exact seam hits, boundary band, and interior controls.
        let m = rng.usize_range(1, 48);
        let coords: Vec<[f64; 2]> = (0..m)
            .map(|_| {
                let mut c = [0.0f64; 2];
                for x in c.iter_mut() {
                    *x = match rng.usize_range(0, 3) {
                        0 => {
                            // Exactly on a tile seam: x mod T == 0.
                            (rng.usize_range(0, g / tile) * tile) as f64
                        }
                        1 => border_coord(rng, g as f64, width as f64),
                        _ => rng.f64_range(0.0, g as f64),
                    };
                }
                c
            })
            .collect();
        let values: Vec<C64> = (0..m)
            .map(|_| C64::new(rng.f64_range(-1.0, 1.0), rng.f64_range(-1.0, 1.0)))
            .collect();

        let mut reference = vec![C64::zeroed(); g * g];
        SerialGridder.grid(&p, &lut, &coords, &values, &mut reference);

        let mut manual = vec![C64::zeroed(); g * g];
        for (c, &v) in coords.iter().zip(values.iter()) {
            let (wins, _) = sample_windows(&dec, &lut, c);
            scatter_rowmajor(g, width, &wins, v, &mut manual);
        }
        assert_eq!(bits(&reference), bits(&manual));
    });
}

/// Total scattered mass is invariant to where the sample sits — the
/// boundary path must not drop or double-count any window point.
#[test]
fn boundary_mass_equals_interior_mass() {
    let g = 32usize;
    let width = 6usize;
    let p = params(g, width, 8);
    let dec = Decomposer::new(&p);
    let lut = KernelLut::from_params(&p);
    let mass = |c: [f64; 2]| -> f64 {
        let mut out = vec![C64::zeroed(); g * g];
        let (wins, _) = sample_windows(&dec, &lut, &c);
        scatter_rowmajor(g, width, &wins, C64::new(1.0, 0.0), &mut out);
        out.iter().map(|z| z.re).sum()
    };
    // Same fractional part, different integer parts: identical weights.
    let frac = 0.314_159_26;
    let interior = mass([16.0 + frac, 16.0 + frac]);
    for c in [
        [frac, frac],                  // corner, both dims wrap
        [frac, 16.0 + frac],           // one dim wraps
        [g as f64 - 1.0 + frac, frac], // opposite edge
        [8.0 + frac, frac],            // seam × boundary
    ] {
        let m = mass(c);
        assert!(
            (m - interior).abs() < 1e-12,
            "mass {m} at {c:?} != interior {interior}"
        );
    }
}
