//! Serving-layer cache and concurrency properties, tested against the
//! in-process [`ServeEngine`] (the same object the daemon multiplexes
//! jobs onto — the transport adds framing, not numerics):
//!
//! 1. **Concurrent correctness** — N client threads with overlapping
//!    trajectories each get results *bitwise identical* to a cold
//!    single-shot `adjoint(..., &SerialGridder)` run, regardless of
//!    cache hits, races between plan builders, or eviction pressure.
//! 2. **LRU discipline** — the plan cache's eviction order and capacity
//!    bound match a reference model under randomized access traces.
//! 3. **Hit ≡ miss** — a cache hit returns the same bytes as the cache
//!    miss that built the plan, including a rebuild after eviction.
//! 4. **No stale plans** — trajectories with identical shape but
//!    different contents never alias to the same cache entry
//!    (regression: the key hashes full trajectory contents, not just
//!    sample count and config).

use jigsaw::core::budget::RunBudget;
use jigsaw::core::gridding::SerialGridder;
use jigsaw::core::serve::{
    plan_key, trajectory_hash, JobRequest, PlanCache, Priority, ServeEngine,
};
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;
use jigsaw_testkit::{cases, Rng};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread;

/// A finite trajectory over the `[0, n)^2` torus plus matching sample
/// values, drawn deterministically from `seed`. Distinct seeds give
/// distinct contents (checked where it matters).
fn problem(n: usize, m: usize, seed: u64) -> (Vec<[f64; 2]>, Vec<C64>) {
    let mut rng = Rng::new(seed);
    let g = n as f64;
    let coords: Vec<[f64; 2]> = (0..m)
        .map(|_| [rng.f64_range(0.0, g), rng.f64_range(0.0, g)])
        .collect();
    let values: Vec<C64> = (0..m)
        .map(|_| C64::new(rng.f64_range(-1.0, 1.0), rng.f64_range(-1.0, 1.0)))
        .collect();
    (coords, values)
}

fn request(tag: u64, n: usize, coords: &[[f64; 2]], values: &[C64]) -> JobRequest {
    JobRequest {
        tag,
        priority: Priority::Normal,
        n: n as u32,
        budget_ms: 0,
        coords: coords.to_vec(),
        values: values.to_vec(),
    }
}

/// Cold single-shot reference: fresh plan, serial gridder, no cache.
fn cold_reference(n: usize, coords: &[[f64; 2]], values: &[C64]) -> Vec<C64> {
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
    plan.adjoint(coords, values, &SerialGridder).unwrap().image
}

fn bits_eq(a: &[C64], b: &[C64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// Property 1: concurrent clients with overlapping trajectories are
/// bitwise identical to cold single-shot runs. The cache capacity is
/// smaller than the trajectory pool, so the trace exercises hits,
/// misses, racing builds of the same key, and evict-then-rebuild.
#[test]
fn concurrent_clients_match_cold_single_shot_bitwise() {
    const N: usize = 16;
    const CLIENTS: usize = 6;
    const JOBS_PER_CLIENT: usize = 4;
    // Four trajectories shared by all clients; capacity 2 forces churn.
    let pool: Vec<(Vec<[f64; 2]>, Vec<C64>)> = (0..4).map(|i| problem(N, 60, 1001 + i)).collect();
    let cold: Vec<Vec<C64>> = pool.iter().map(|(c, v)| cold_reference(N, c, v)).collect();

    let engine = Arc::new(ServeEngine::new(2));
    let outputs: Vec<Vec<(usize, Vec<C64>)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let engine = Arc::clone(&engine);
                let pool = &pool;
                s.spawn(move || {
                    (0..JOBS_PER_CLIENT)
                        .map(|j| {
                            // Stagger the access pattern per client so
                            // threads race on different keys.
                            let which = (c + j) % pool.len();
                            let (coords, values) = &pool[which];
                            let req = request((c * 100 + j) as u64, N, coords, values);
                            let res = engine
                                .execute(&req, &RunBudget::unlimited())
                                .unwrap_or_else(|e| panic!("client {c} job {j}: {}", e.message));
                            assert_eq!(res.tag, req.tag, "results must keep their tag");
                            (which, res.image)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (c, client_results) in outputs.iter().enumerate() {
        for (j, (which, image)) in client_results.iter().enumerate() {
            assert!(
                bits_eq(image, &cold[*which]),
                "client {c} job {j} (trajectory {which}) diverged from the cold serial run"
            );
        }
    }
    let cache = engine.cache();
    assert!(cache.len() <= 2, "capacity bound violated: {}", cache.len());
    assert!(cache.hits() + cache.misses() >= (CLIENTS * JOBS_PER_CLIENT) as u64);
}

/// Property 2: the cache's LRU behaviour matches a reference model —
/// promote on hit, insert at MRU on miss, evict from the LRU end, never
/// exceed capacity — under randomized access traces.
#[test]
fn lru_eviction_order_and_capacity_match_model() {
    const N: usize = 8;
    cases!(8, |rng| {
        let capacity = rng.usize_range(1, 5);
        let cache = PlanCache::new(capacity);
        let cfg = NufftConfig::with_n(N);
        // A pool of distinct trajectories (distinct contents ⇒ distinct
        // keys), larger than the capacity so evictions must happen.
        let base = rng.u64();
        let pool: Vec<Vec<[f64; 2]>> = (0..capacity + 3)
            .map(|i| problem(N, 12, base.wrapping_add(7919 * i as u64)).0)
            .collect();
        let keys: Vec<_> = pool.iter().map(|c| plan_key(&cfg, c)).collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "trajectory pool must have distinct keys");
            }
        }

        // Reference model: front = MRU.
        let mut model: VecDeque<usize> = VecDeque::new();
        let mut model_evictions = 0u64;
        let ops = rng.usize_range(10, 30);
        for _ in 0..ops {
            let which = rng.usize_range(0, pool.len());
            let (_, hit) = cache.get_or_build(&cfg, &pool[which]).unwrap();
            let modelled_hit = model.contains(&which);
            assert_eq!(
                hit, modelled_hit,
                "hit/miss disagrees with model for trajectory {which}"
            );
            if let Some(pos) = model.iter().position(|&k| k == which) {
                model.remove(pos);
            }
            model.push_front(which);
            while model.len() > capacity {
                model.pop_back();
                model_evictions += 1;
            }

            assert!(cache.len() <= capacity, "capacity bound violated");
            let want: Vec<_> = model.iter().map(|&k| keys[k].clone()).collect();
            assert_eq!(cache.keys(), want, "MRU→LRU order diverged from model");
        }
        assert_eq!(cache.evictions(), model_evictions, "eviction count");
        assert_eq!(
            cache.hits() + cache.misses(),
            ops as u64,
            "every access is either a hit or a miss"
        );
    });
}

/// Property 3: a cache hit is bitwise identical to the miss that built
/// the plan — and to a rebuild after the entry was evicted.
#[test]
fn cache_hit_output_equals_cache_miss_output_bitwise() {
    const N: usize = 16;
    let (coords_a, values_a) = problem(N, 80, 31);
    let (coords_b, _) = problem(N, 80, 97);
    let engine = ServeEngine::new(1);
    let req = request(1, N, &coords_a, &values_a);

    let miss = engine.execute(&req, &RunBudget::unlimited()).unwrap();
    assert!(!miss.cache_hit);
    let hit = engine.execute(&req, &RunBudget::unlimited()).unwrap();
    assert!(hit.cache_hit, "second identical job must hit the cache");
    assert!(bits_eq(&miss.image, &hit.image), "hit must equal miss");

    // Evict A (capacity 1) by planning B, then rebuild A from scratch.
    let (_, b_hit) = engine
        .cache()
        .get_or_build(&NufftConfig::with_n(N), &coords_b)
        .unwrap();
    assert!(!b_hit);
    let rebuilt = engine.execute(&req, &RunBudget::unlimited()).unwrap();
    assert!(!rebuilt.cache_hit, "A must have been evicted");
    assert!(
        bits_eq(&miss.image, &rebuilt.image),
        "rebuilt plan must reproduce the original bytes"
    );
    assert_eq!(engine.cache().evictions(), 2);
}

/// Property 4 (stale-plan regression): same-shape, different-content
/// trajectories never alias. The cache key hashes every coordinate bit,
/// so changing a single sample — or merely reordering samples — yields
/// a distinct key and a fresh plan.
#[test]
fn same_shape_different_content_trajectories_never_alias() {
    const N: usize = 16;
    let cfg = NufftConfig::with_n(N);
    let (coords, values) = problem(N, 64, 11);

    // One-ULP change in one coordinate: different key.
    let mut nudged = coords.clone();
    nudged[40][1] = f64::from_bits(nudged[40][1].to_bits() ^ 1);
    assert_ne!(trajectory_hash(&coords), trajectory_hash(&nudged));
    assert_ne!(plan_key(&cfg, &coords), plan_key(&cfg, &nudged));

    // Same multiset of samples, different order: different key (the
    // planned decomposition is order-dependent).
    let mut swapped = coords.clone();
    swapped.swap(0, 1);
    assert_ne!(trajectory_hash(&coords), trajectory_hash(&swapped));

    // End to end: submitting the nudged trajectory after the original
    // must be a cache miss and must not reuse the stale plan's output.
    let engine = ServeEngine::new(4);
    let original = engine
        .execute(&request(1, N, &coords, &values), &RunBudget::unlimited())
        .unwrap();
    assert!(!original.cache_hit);
    let nudged_res = engine
        .execute(&request(2, N, &nudged, &values), &RunBudget::unlimited())
        .unwrap();
    assert!(
        !nudged_res.cache_hit,
        "different trajectory contents must never hit a stale plan"
    );
    assert_eq!(engine.cache().len(), 2, "both plans must be resident");
    assert!(
        bits_eq(&nudged_res.image, &cold_reference(N, &nudged, &values)),
        "nudged trajectory must be gridded with its own plan"
    );
    assert!(
        bits_eq(&original.image, &cold_reference(N, &coords, &values)),
        "original result must match its own cold run"
    );
}

/// `cases!` property: any two trajectories drawn with different
/// contents get different hashes (smoke-level collision resistance for
/// the FNV-based key, over small perturbations where it matters).
#[test]
fn trajectory_hash_separates_nearby_trajectories() {
    cases!(16, |rng| {
        let n = *rng.choose(&[8usize, 16]);
        let m = rng.usize_range(4, 40);
        let (coords, _) = problem(n, m, rng.u64());
        let mut other = coords.clone();
        let i = rng.usize_range(0, m);
        let axis = rng.usize_range(0, 2);
        other[i][axis] = f64::from_bits(other[i][axis].to_bits() ^ (1 << rng.usize_range(0, 52)));
        if other[i][axis].to_bits() != coords[i][axis].to_bits() {
            assert_ne!(
                trajectory_hash(&coords),
                trajectory_hash(&other),
                "single-bit perturbation at sample {i} axis {axis} must change the hash"
            );
        }
    });
}
