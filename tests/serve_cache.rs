//! Serving-layer cache and concurrency properties, tested against the
//! in-process [`ServeEngine`] (the same object the daemon multiplexes
//! jobs onto — the transport adds framing, not numerics):
//!
//! 1. **Concurrent correctness** — N client threads with overlapping
//!    trajectories each get results *bitwise identical* to a cold
//!    single-shot `adjoint(..., &SerialGridder)` run, regardless of
//!    cache hits, races between plan builders, or eviction pressure.
//! 2. **LRU discipline** — the plan cache's eviction order and capacity
//!    bound match a reference model under randomized access traces.
//! 3. **Hit ≡ miss** — a cache hit returns the same bytes as the cache
//!    miss that built the plan, including a rebuild after eviction.
//! 4. **No stale plans** — trajectories with identical shape but
//!    different contents never alias to the same cache entry
//!    (regression: the key hashes full trajectory contents, not just
//!    sample count and config).
//! 5. **Snapshot round-trip** — encode → decode of the durable
//!    plan-cache snapshot is lossless to the bit, under randomized
//!    entry sets; a cache persisted and restored through a real file
//!    serves the same request as a hit with bitwise-identical output.
//! 6. **Snapshot damage** — randomized truncation and bit flips never
//!    panic the loader; every declared entry is either restored or
//!    counted skipped, and version damage degrades to an error (cold
//!    start), never a crash.
//! 7. **Input hygiene** — non-finite k-space sample values and density
//!    weights are rejected with a data error before they can reach a
//!    plan or a persisted snapshot.

use jigsaw::core::budget::RunBudget;
use jigsaw::core::gridding::SerialGridder;
use jigsaw::core::serve::{
    decode_snapshot, encode_snapshot, plan_key, snapshot, trajectory_hash, JobRequest, PlanCache,
    Priority, ServeEngine, SnapshotEntry,
};
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;
use jigsaw_testkit::{cases, Rng};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread;

/// A finite trajectory over the `[0, n)^2` torus plus matching sample
/// values, drawn deterministically from `seed`. Distinct seeds give
/// distinct contents (checked where it matters).
fn problem(n: usize, m: usize, seed: u64) -> (Vec<[f64; 2]>, Vec<C64>) {
    let mut rng = Rng::new(seed);
    let g = n as f64;
    let coords: Vec<[f64; 2]> = (0..m)
        .map(|_| [rng.f64_range(0.0, g), rng.f64_range(0.0, g)])
        .collect();
    let values: Vec<C64> = (0..m)
        .map(|_| C64::new(rng.f64_range(-1.0, 1.0), rng.f64_range(-1.0, 1.0)))
        .collect();
    (coords, values)
}

fn request(tag: u64, n: usize, coords: &[[f64; 2]], values: &[C64]) -> JobRequest {
    JobRequest {
        tag,
        priority: Priority::Normal,
        n: n as u32,
        budget_ms: 0,
        coords: coords.to_vec(),
        values: values.to_vec(),
    }
}

/// Cold single-shot reference: fresh plan, serial gridder, no cache.
fn cold_reference(n: usize, coords: &[[f64; 2]], values: &[C64]) -> Vec<C64> {
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
    plan.adjoint(coords, values, &SerialGridder).unwrap().image
}

fn bits_eq(a: &[C64], b: &[C64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// Property 1: concurrent clients with overlapping trajectories are
/// bitwise identical to cold single-shot runs. The cache capacity is
/// smaller than the trajectory pool, so the trace exercises hits,
/// misses, racing builds of the same key, and evict-then-rebuild.
#[test]
fn concurrent_clients_match_cold_single_shot_bitwise() {
    const N: usize = 16;
    const CLIENTS: usize = 6;
    const JOBS_PER_CLIENT: usize = 4;
    // Four trajectories shared by all clients; capacity 2 forces churn.
    let pool: Vec<(Vec<[f64; 2]>, Vec<C64>)> = (0..4).map(|i| problem(N, 60, 1001 + i)).collect();
    let cold: Vec<Vec<C64>> = pool.iter().map(|(c, v)| cold_reference(N, c, v)).collect();

    let engine = Arc::new(ServeEngine::new(2));
    let outputs: Vec<Vec<(usize, Vec<C64>)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let engine = Arc::clone(&engine);
                let pool = &pool;
                s.spawn(move || {
                    (0..JOBS_PER_CLIENT)
                        .map(|j| {
                            // Stagger the access pattern per client so
                            // threads race on different keys.
                            let which = (c + j) % pool.len();
                            let (coords, values) = &pool[which];
                            let req = request((c * 100 + j) as u64, N, coords, values);
                            let res = engine
                                .execute(&req, &RunBudget::unlimited())
                                .unwrap_or_else(|e| panic!("client {c} job {j}: {}", e.message));
                            assert_eq!(res.tag, req.tag, "results must keep their tag");
                            (which, res.image)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (c, client_results) in outputs.iter().enumerate() {
        for (j, (which, image)) in client_results.iter().enumerate() {
            assert!(
                bits_eq(image, &cold[*which]),
                "client {c} job {j} (trajectory {which}) diverged from the cold serial run"
            );
        }
    }
    let cache = engine.cache();
    assert!(cache.len() <= 2, "capacity bound violated: {}", cache.len());
    assert!(cache.hits() + cache.misses() >= (CLIENTS * JOBS_PER_CLIENT) as u64);
}

/// Property 2: the cache's LRU behaviour matches a reference model —
/// promote on hit, insert at MRU on miss, evict from the LRU end, never
/// exceed capacity — under randomized access traces.
#[test]
fn lru_eviction_order_and_capacity_match_model() {
    const N: usize = 8;
    cases!(8, |rng| {
        let capacity = rng.usize_range(1, 5);
        let cache = PlanCache::new(capacity);
        let cfg = NufftConfig::with_n(N);
        // A pool of distinct trajectories (distinct contents ⇒ distinct
        // keys), larger than the capacity so evictions must happen.
        let base = rng.u64();
        let pool: Vec<Vec<[f64; 2]>> = (0..capacity + 3)
            .map(|i| problem(N, 12, base.wrapping_add(7919 * i as u64)).0)
            .collect();
        let keys: Vec<_> = pool.iter().map(|c| plan_key(&cfg, c)).collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "trajectory pool must have distinct keys");
            }
        }

        // Reference model: front = MRU.
        let mut model: VecDeque<usize> = VecDeque::new();
        let mut model_evictions = 0u64;
        let ops = rng.usize_range(10, 30);
        for _ in 0..ops {
            let which = rng.usize_range(0, pool.len());
            let (_, hit) = cache.get_or_build(&cfg, &pool[which]).unwrap();
            let modelled_hit = model.contains(&which);
            assert_eq!(
                hit, modelled_hit,
                "hit/miss disagrees with model for trajectory {which}"
            );
            if let Some(pos) = model.iter().position(|&k| k == which) {
                model.remove(pos);
            }
            model.push_front(which);
            while model.len() > capacity {
                model.pop_back();
                model_evictions += 1;
            }

            assert!(cache.len() <= capacity, "capacity bound violated");
            let want: Vec<_> = model.iter().map(|&k| keys[k].clone()).collect();
            assert_eq!(cache.keys(), want, "MRU→LRU order diverged from model");
        }
        assert_eq!(cache.evictions(), model_evictions, "eviction count");
        assert_eq!(
            cache.hits() + cache.misses(),
            ops as u64,
            "every access is either a hit or a miss"
        );
    });
}

/// Property 3: a cache hit is bitwise identical to the miss that built
/// the plan — and to a rebuild after the entry was evicted.
#[test]
fn cache_hit_output_equals_cache_miss_output_bitwise() {
    const N: usize = 16;
    let (coords_a, values_a) = problem(N, 80, 31);
    let (coords_b, _) = problem(N, 80, 97);
    let engine = ServeEngine::new(1);
    let req = request(1, N, &coords_a, &values_a);

    let miss = engine.execute(&req, &RunBudget::unlimited()).unwrap();
    assert!(!miss.cache_hit);
    let hit = engine.execute(&req, &RunBudget::unlimited()).unwrap();
    assert!(hit.cache_hit, "second identical job must hit the cache");
    assert!(bits_eq(&miss.image, &hit.image), "hit must equal miss");

    // Evict A (capacity 1) by planning B, then rebuild A from scratch.
    let (_, b_hit) = engine
        .cache()
        .get_or_build(&NufftConfig::with_n(N), &coords_b)
        .unwrap();
    assert!(!b_hit);
    let rebuilt = engine.execute(&req, &RunBudget::unlimited()).unwrap();
    assert!(!rebuilt.cache_hit, "A must have been evicted");
    assert!(
        bits_eq(&miss.image, &rebuilt.image),
        "rebuilt plan must reproduce the original bytes"
    );
    assert_eq!(engine.cache().evictions(), 2);
}

/// Property 4 (stale-plan regression): same-shape, different-content
/// trajectories never alias. The cache key hashes every coordinate bit,
/// so changing a single sample — or merely reordering samples — yields
/// a distinct key and a fresh plan.
#[test]
fn same_shape_different_content_trajectories_never_alias() {
    const N: usize = 16;
    let cfg = NufftConfig::with_n(N);
    let (coords, values) = problem(N, 64, 11);

    // One-ULP change in one coordinate: different key.
    let mut nudged = coords.clone();
    nudged[40][1] = f64::from_bits(nudged[40][1].to_bits() ^ 1);
    assert_ne!(trajectory_hash(&coords), trajectory_hash(&nudged));
    assert_ne!(plan_key(&cfg, &coords), plan_key(&cfg, &nudged));

    // Same multiset of samples, different order: different key (the
    // planned decomposition is order-dependent).
    let mut swapped = coords.clone();
    swapped.swap(0, 1);
    assert_ne!(trajectory_hash(&coords), trajectory_hash(&swapped));

    // End to end: submitting the nudged trajectory after the original
    // must be a cache miss and must not reuse the stale plan's output.
    let engine = ServeEngine::new(4);
    let original = engine
        .execute(&request(1, N, &coords, &values), &RunBudget::unlimited())
        .unwrap();
    assert!(!original.cache_hit);
    let nudged_res = engine
        .execute(&request(2, N, &nudged, &values), &RunBudget::unlimited())
        .unwrap();
    assert!(
        !nudged_res.cache_hit,
        "different trajectory contents must never hit a stale plan"
    );
    assert_eq!(engine.cache().len(), 2, "both plans must be resident");
    assert!(
        bits_eq(&nudged_res.image, &cold_reference(N, &nudged, &values)),
        "nudged trajectory must be gridded with its own plan"
    );
    assert!(
        bits_eq(&original.image, &cold_reference(N, &coords, &values)),
        "original result must match its own cold run"
    );
}

/// A randomized snapshot-entry set: plan entries with assorted shapes,
/// plus an occasional Toeplitz entry carrying density weights.
fn random_entries(rng: &mut Rng) -> Vec<SnapshotEntry> {
    let count = rng.usize_range(1, 5);
    (0..count)
        .map(|_| {
            let n = *rng.choose(&[8usize, 16, 24]);
            let m = rng.usize_range(4, 40);
            let coords = problem(n, m, rng.u64()).0;
            let toeplitz = rng.usize_range(0, 3) == 0;
            let weights: Vec<f64> = if toeplitz {
                (0..m).map(|_| rng.f64_range(0.1, 2.0)).collect()
            } else {
                Vec::new()
            };
            SnapshotEntry {
                kind: if toeplitz {
                    snapshot::ENTRY_TOEPLITZ
                } else {
                    snapshot::ENTRY_PLAN
                },
                cfg: NufftConfig::with_n(n),
                coords: coords.into(),
                weights: weights.into(),
            }
        })
        .collect()
}

/// Property 5a: encode → decode is bitwise lossless for arbitrary
/// well-formed entry sets — every field of every entry survives, in
/// order, with the file checksum intact.
#[test]
fn snapshot_round_trip_is_bitwise_lossless() {
    cases!(16, |rng| {
        let entries = random_entries(rng);
        let bytes = encode_snapshot(&entries);
        let out = decode_snapshot(&bytes).expect("well-formed snapshot must decode");
        assert_eq!(out.skipped, 0);
        assert!(out.file_checksum_ok);
        assert_eq!(out.entries, entries, "round trip must be bitwise");
    });
}

/// Property 5b: persist → restore through a real file, end to end. The
/// restored cache must serve the original request as a *hit* whose
/// image is bitwise identical to the pre-restart (and cold) output.
#[test]
fn restored_cache_serves_bitwise_identical_hits() {
    const N: usize = 16;
    let (coords, values) = problem(N, 70, 555);
    let req = request(1, N, &coords, &values);
    let path = std::env::temp_dir().join(format!(
        "jigsaw-serve-cache-restore-{}.snap",
        std::process::id()
    ));

    let engine = ServeEngine::new(4);
    let before = engine.execute(&req, &RunBudget::unlimited()).unwrap();
    assert!(!before.cache_hit);
    let saved = engine.cache().save_snapshot(&path).unwrap();
    assert_eq!(saved, 1);

    let restarted = ServeEngine::new(4);
    let (loaded, skipped) = restarted
        .cache()
        .load_snapshot(&path, &SerialGridder)
        .unwrap();
    assert_eq!((loaded, skipped), (1, 0));
    let after = restarted.execute(&req, &RunBudget::unlimited()).unwrap();
    assert!(after.cache_hit, "restored plan must serve as a cache hit");
    assert!(
        bits_eq(&before.image, &after.image),
        "post-restore output must be bitwise identical"
    );
    assert!(
        bits_eq(&after.image, &cold_reference(N, &coords, &values)),
        "post-restore output must match the cold serial reference"
    );
    let _ = std::fs::remove_file(&path);
}

/// Property 6a: truncating a snapshot at any byte never panics the
/// decoder, and the accounting never loses an entry — everything
/// declared is either restored intact or counted skipped.
#[test]
fn truncated_snapshots_never_panic_and_account_for_every_entry() {
    cases!(8, |rng| {
        let entries = random_entries(rng);
        let bytes = encode_snapshot(&entries);
        let cut = rng.usize_range(0, bytes.len());
        match decode_snapshot(&bytes[..cut]) {
            Err(_) => {} // header damage: cold start
            Ok(out) => {
                assert_eq!(
                    out.entries.len() as u64 + out.skipped,
                    entries.len() as u64,
                    "cut at {cut}: every declared entry restored or skipped"
                );
                for e in &out.entries {
                    assert!(entries.contains(e), "salvaged entries must be genuine");
                }
            }
        }
    });
}

/// Property 6b: flipping any single bit never panics the decoder and
/// never *invents* entries — survivors are bitwise-genuine, casualties
/// are counted, and header/version damage degrades to an error.
#[test]
fn bit_flips_never_panic_and_survivors_are_genuine() {
    cases!(8, |rng| {
        let entries = random_entries(rng);
        let mut bytes = encode_snapshot(&entries);
        let pos = rng.usize_range(0, bytes.len());
        bytes[pos] ^= 1 << rng.usize_range(0, 8);
        match decode_snapshot(&bytes) {
            Err(_) => {} // magic/version damage: cold start
            Ok(out) => {
                assert!(out.entries.len() <= entries.len());
                for e in &out.entries {
                    assert!(
                        entries.contains(e),
                        "bit flip at byte {pos} produced a forged entry"
                    );
                }
            }
        }
    });
}

/// Property 6c: a future format version is refused outright (`Err`, so
/// the daemon cold-starts) — stale readers must never guess at a layout
/// they do not understand.
#[test]
fn future_snapshot_version_is_refused() {
    let entries = random_entries(&mut Rng::new(42));
    let mut bytes = encode_snapshot(&entries);
    bytes[4..8].copy_from_slice(&(jigsaw::core::serve::SNAPSHOT_VERSION + 1).to_le_bytes());
    let err = decode_snapshot(&bytes).expect_err("future version must be an error");
    assert!(
        err.to_string().contains("unsupported snapshot version"),
        "{err}"
    );
}

/// Property 7: non-finite sample values are rejected with a tagged data
/// error at submit time — under every priority and for any poisoned
/// index — and never touch the plan cache.
#[test]
fn non_finite_sample_values_are_rejected_as_data_errors() {
    use jigsaw::core::serve::ErrorCategory;
    const N: usize = 8;
    cases!(8, |rng| {
        let m = rng.usize_range(4, 30);
        let (coords, mut values) = problem(N, m, rng.u64());
        let poison = *rng.choose(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        let i = rng.usize_range(0, m);
        if rng.usize_range(0, 2) == 0 {
            values[i] = C64::new(poison, values[i].im);
        } else {
            values[i] = C64::new(values[i].re, poison);
        }
        let engine = ServeEngine::new(2);
        let err = engine
            .execute(&request(3, N, &coords, &values), &RunBudget::unlimited())
            .expect_err("poisoned values must be refused");
        assert_eq!(err.category, ErrorCategory::Data, "{}", err.message);
        assert!(
            err.message.contains("non-finite sample value"),
            "{}",
            err.message
        );
        assert_eq!(
            engine.cache().len(),
            0,
            "rejected jobs must not populate the cache"
        );
    });
}

/// Property 7b: non-finite density weights are rejected by the Toeplitz
/// kernel build before the weight can poison a PSF (which a snapshot
/// would otherwise happily persist and replay).
#[test]
fn non_finite_density_weights_are_rejected() {
    const N: usize = 8;
    let cache = PlanCache::new(4);
    let cfg = NufftConfig::with_n(N);
    let (coords, _) = problem(N, 20, 77);
    for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut weights = vec![1.0; coords.len()];
        weights[7] = poison;
        let err = match cache.get_or_build_toeplitz(&cfg, &coords, &weights, &SerialGridder) {
            Err(e) => e,
            Ok(_) => panic!("poisoned weights must be refused"),
        };
        assert!(
            err.to_string()
                .contains("non-finite density weight at index 7"),
            "{err}"
        );
    }
    assert_eq!(cache.len(), 0);
}

/// `cases!` property: any two trajectories drawn with different
/// contents get different hashes (smoke-level collision resistance for
/// the FNV-based key, over small perturbations where it matters).
#[test]
fn trajectory_hash_separates_nearby_trajectories() {
    cases!(16, |rng| {
        let n = *rng.choose(&[8usize, 16]);
        let m = rng.usize_range(4, 40);
        let (coords, _) = problem(n, m, rng.u64());
        let mut other = coords.clone();
        let i = rng.usize_range(0, m);
        let axis = rng.usize_range(0, 2);
        other[i][axis] = f64::from_bits(other[i][axis].to_bits() ^ (1 << rng.usize_range(0, 52)));
        if other[i][axis].to_bits() != coords[i][axis].to_bits() {
            assert_ne!(
                trajectory_hash(&coords),
                trajectory_hash(&other),
                "single-bit perturbation at sample {i} axis {axis} must change the hash"
            );
        }
    });
}
