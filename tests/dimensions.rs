//! Dimensional coverage: the same generic machinery must work in 1-D
//! (degenerate), 2-D (the paper's main case), and 3-D.

use jigsaw::core::gridding::{ExactGridder, SerialGridder, SliceDiceGridder};
use jigsaw::core::metrics::rel_l2;
use jigsaw::core::nudft::adjoint_nudft;
use jigsaw::core::toeplitz::ToeplitzOperator;
use jigsaw::core::{NufftConfig, NufftPlan};
use jigsaw::num::C64;

fn rand_coords<const D: usize>(m: usize, seed: u64) -> Vec<[f64; D]> {
    jigsaw::core::traj::random_nd::<D>(m, seed)
}

fn rand_values(m: usize, seed: u64) -> Vec<C64> {
    let mut s = seed | 3;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s as f64 / u64::MAX as f64 - 0.5
    };
    (0..m).map(|_| C64::new(next(), next())).collect()
}

#[test]
fn one_dimensional_nufft_matches_nudft() {
    let n = 64;
    let coords = rand_coords::<1>(200, 1);
    let values = rand_values(200, 2);
    let plan = NufftPlan::<f64, 1>::new(NufftConfig::with_n(n)).unwrap();
    let img = plan.adjoint(&coords, &values, &ExactGridder).unwrap().image;
    let exact = adjoint_nudft(n, &coords, &values, None);
    let err = rel_l2(&img, &exact);
    assert!(err < 1e-4, "1-D adjoint error {err}");
    // Forward round too.
    let fwd = plan.forward(&img, &coords).unwrap().samples;
    assert_eq!(fwd.len(), 200);
}

#[test]
fn one_dimensional_engines_agree() {
    let n = 64;
    let coords = rand_coords::<1>(300, 5);
    let values = rand_values(300, 6);
    let plan = NufftPlan::<f64, 1>::new(NufftConfig::with_n(n)).unwrap();
    let a = plan
        .adjoint(&coords, &values, &SerialGridder)
        .unwrap()
        .image;
    let b = plan
        .adjoint(&coords, &values, &SliceDiceGridder::default())
        .unwrap()
        .image;
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.re.to_bits(), y.re.to_bits());
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
}

#[test]
fn three_dimensional_toeplitz_matches_composition() {
    let n = 8;
    let coords = rand_coords::<3>(150, 9);
    let cfg = NufftConfig::with_n(n);
    let plan = NufftPlan::<f64, 3>::new(cfg.clone()).unwrap();
    let top = ToeplitzOperator::<3>::build(&cfg, &coords, &[], &ExactGridder).unwrap();
    let x = rand_values(n * n * n, 4);
    let via_pair = plan
        .adjoint(
            &coords,
            &plan.forward(&x, &coords).unwrap().samples,
            &ExactGridder,
        )
        .unwrap()
        .image;
    let via_toeplitz = top.apply(&x).unwrap();
    let err = rel_l2(&via_toeplitz, &via_pair);
    assert!(err < 5e-2, "3-D Toeplitz vs pair: {err}");
}

#[test]
fn forward_batch_matches_individual() {
    let n = 16;
    let coords = rand_coords::<2>(60, 11);
    let a = rand_values(n * n, 12);
    let b = rand_values(n * n, 13);
    let plan = NufftPlan::<f64, 2>::new(NufftConfig::with_n(n)).unwrap();
    let batched = plan.forward_batch(&[&a, &b], &coords).unwrap();
    let fa = plan.forward(&a, &coords).unwrap();
    for (x, y) in batched[0].samples.iter().zip(&fa.samples) {
        assert_eq!(x.re.to_bits(), y.re.to_bits());
    }
    assert_eq!(batched.len(), 2);
}
